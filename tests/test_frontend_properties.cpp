// Property tests for the zero-copy frontend: every SpecGen-generated
// spec (and error-injected mutants of it) is lexed twice — once by the
// production table-driven lexer and once by a deliberately naive
// reference lexer written here with independent line/column bookkeeping —
// and the two streams must agree token for token (kind, spelling, value,
// line, column), with diagnostics at identical positions.  The reference
// implementation shares no code with src/frontend, so a table-building
// bug, a stale line_start_ after arena reuse, or a string_view that
// drifted off the source buffer all surface as a mismatch at an exact
// (seed, token index) pair.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "support/arena.hpp"
#include "testing/rng.hpp"
#include "testing/spec_gen.hpp"

namespace {

using namespace splice;
using namespace splice::frontend;

// ---------------------------------------------------------------------------
// Reference lexer: char-by-char, ctype-based, owning std::string spellings.
// Mirrors the language definition, not the production implementation.

struct RefToken {
  Tok kind = Tok::EndOfInput;
  std::string text;
  std::uint64_t value = 0;
  std::uint32_t line = 0;
  std::uint32_t column = 0;
};

struct RefDiag {
  DiagId id;
  std::uint32_t line;
  std::uint32_t column;
};

struct RefLex {
  std::vector<RefToken> tokens;
  std::vector<RefDiag> diags;
};

class RefLexer {
 public:
  explicit RefLexer(std::string_view text) : s_(text) {}

  RefLex run() {
    RefLex out;
    while (true) {
      skip_trivia(out);
      RefToken tok;
      tok.line = line_;
      tok.column = col_;
      if (i_ >= s_.size()) {
        out.tokens.push_back(tok);
        return out;
      }
      const char c = s_[i_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (i_ < s_.size() && (std::isalnum(static_cast<unsigned char>(
                                      s_[i_])) != 0 ||
                                  s_[i_] == '_')) {
          tok.text += s_[i_];
          bump();
        }
        tok.kind = Tok::Ident;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        lex_number(tok, out);
      } else if (Tok p; punct(c, p)) {
        tok.kind = p;
        bump();
      } else {
        out.diags.push_back({DiagId::UnexpectedCharacter, line_, col_});
        bump();
        continue;  // skip and resume, like the production lexer
      }
      out.tokens.push_back(std::move(tok));
    }
  }

 private:
  void bump() {
    if (s_[i_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++i_;
  }

  static bool punct(char c, Tok& out) {
    switch (c) {
      case '*': out = Tok::Star; return true;
      case ':': out = Tok::Colon; return true;
      case '+': out = Tok::Plus; return true;
      case '^': out = Tok::Caret; return true;
      case '&': out = Tok::Amp; return true;
      case '(': out = Tok::LParen; return true;
      case ')': out = Tok::RParen; return true;
      case '{': out = Tok::LBrace; return true;
      case '}': out = Tok::RBrace; return true;
      case ',': out = Tok::Comma; return true;
      case ';': out = Tok::Semi; return true;
      case '%': out = Tok::Percent; return true;
      default: return false;
    }
  }

  void lex_number(RefToken& tok, RefLex& out) {
    if (s_[i_] == '0' && i_ + 1 < s_.size() &&
        (s_[i_ + 1] == 'x' || s_[i_ + 1] == 'X')) {
      bump();
      bump();
      while (i_ < s_.size() &&
             std::isxdigit(static_cast<unsigned char>(s_[i_])) != 0) {
        tok.text += s_[i_];
        bump();
      }
      tok.kind = Tok::HexNumber;
      if (tok.text.empty()) {
        out.diags.push_back({DiagId::MalformedNumber, tok.line, tok.column});
      } else if (tok.text.size() <= 16) {
        std::uint64_t v = 0;
        for (char d : tok.text) {
          v <<= 4;
          if (d >= '0' && d <= '9') v |= static_cast<std::uint64_t>(d - '0');
          else if (d >= 'a' && d <= 'f')
            v |= static_cast<std::uint64_t>(d - 'a' + 10);
          else
            v |= static_cast<std::uint64_t>(d - 'A' + 10);
        }
        tok.value = v;
      }
      return;
    }
    while (i_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[i_])) != 0) {
      tok.text += s_[i_];
      bump();
    }
    tok.kind = Tok::Number;
    std::uint64_t v = 0;
    bool overflow = false;
    for (char d : tok.text) {
      const auto digit = static_cast<std::uint64_t>(d - '0');
      if (v > (UINT64_MAX - digit) / 10) {
        overflow = true;
        break;
      }
      v = v * 10 + digit;
    }
    if (overflow) {
      out.diags.push_back({DiagId::MalformedNumber, tok.line, tok.column});
    } else {
      tok.value = v;
    }
  }

  void skip_trivia(RefLex& out) {
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        bump();
      } else if (c == '/' && i_ + 1 < s_.size() && s_[i_ + 1] == '/') {
        while (i_ < s_.size() && s_[i_] != '\n') bump();
      } else if (c == '/' && i_ + 1 < s_.size() && s_[i_ + 1] == '*') {
        const std::uint32_t start_line = line_, start_col = col_;
        bump();
        bump();
        bool closed = false;
        while (i_ < s_.size()) {
          if (s_[i_] == '*' && i_ + 1 < s_.size() && s_[i_ + 1] == '/') {
            bump();
            bump();
            closed = true;
            break;
          }
          bump();
        }
        if (!closed) {
          out.diags.push_back(
              {DiagId::UnterminatedComment, start_line, start_col});
        }
      } else {
        return;
      }
    }
  }

  std::string_view s_;
  std::size_t i_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

// ---------------------------------------------------------------------------

/// Lex with the production lexer and assert stream + diagnostic equality
/// against the reference, plus the zero-copy invariant (every non-empty
/// spelling is a view into the source buffer, never a copy).
void expect_matches_reference(std::string_view text,
                              const std::string& label) {
  const RefLex ref = RefLexer(text).run();

  DiagnosticEngine diags;
  Lexer lexer(text, diags);
  const std::vector<Token> toks = lexer.tokenize();

  ASSERT_EQ(toks.size(), ref.tokens.size()) << label;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& a = toks[i];
    const RefToken& b = ref.tokens[i];
    ASSERT_EQ(a.kind, b.kind) << label << " token " << i;
    ASSERT_EQ(a.text, b.text) << label << " token " << i;
    ASSERT_EQ(a.value, b.value) << label << " token " << i;
    ASSERT_EQ(a.loc.line, b.line) << label << " token " << i;
    ASSERT_EQ(a.loc.column, b.column) << label << " token " << i;
    if (!a.text.empty()) {
      ASSERT_GE(a.text.data(), text.data()) << label << " token " << i;
      ASSERT_LE(a.text.data() + a.text.size(), text.data() + text.size())
          << label << " token " << i << " — spelling not zero-copy";
    }
  }

  const std::vector<Diagnostic> got = diags.all();
  ASSERT_EQ(got.size(), ref.diags.size()) << label;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].id, ref.diags[i].id) << label << " diag " << i;
    ASSERT_EQ(got[i].loc.line, ref.diags[i].line) << label << " diag " << i;
    ASSERT_EQ(got[i].loc.column, ref.diags[i].column)
        << label << " diag " << i;
  }

  // The arena overload must produce the identical stream.
  DiagnosticEngine arena_diags;
  support::Arena arena;
  Lexer arena_lexer(text, arena_diags);
  const std::span<const Token> arena_toks = arena_lexer.tokenize(arena);
  ASSERT_EQ(arena_toks.size(), toks.size()) << label;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    ASSERT_EQ(arena_toks[i].kind, toks[i].kind) << label << " token " << i;
    ASSERT_EQ(arena_toks[i].text, toks[i].text) << label << " token " << i;
    ASSERT_EQ(arena_toks[i].loc.line, toks[i].loc.line)
        << label << " token " << i;
    ASSERT_EQ(arena_toks[i].loc.column, toks[i].loc.column)
        << label << " token " << i;
  }
}

TEST(FrontendProperties, GeneratedSpecsLexIdentically) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const splice::testing::SpecModel model = splice::testing::generate_spec(seed);
    const std::string text = model.render();
    expect_matches_reference(text, "seed " + std::to_string(seed));
  }
}

TEST(FrontendProperties, ErrorInjectedSpecsLexIdentically) {
  // Inject lexical damage at seed-derived positions: an illegal byte, a
  // never-closed block comment, a bare '0x', an overflowing literal.  The
  // production lexer must report every error at exactly the line/column
  // the reference computes, and keep the token streams aligned after
  // recovery.
  const char kIllegal[] = {'@', '$', '?', '~', '!', '#'};
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    const std::string text = splice::testing::generate_spec(seed).render();
    splice::testing::Rng rng(splice::testing::splitmix64(seed));

    std::string mutant = text;
    mutant.insert(rng.range(0, mutant.size()),
                  1, kIllegal[rng.range(0, sizeof kIllegal - 1)]);
    expect_matches_reference(mutant, "illegal-byte seed " +
                                         std::to_string(seed));

    mutant = text;
    mutant.insert(rng.range(0, mutant.size()), "/* dangling");
    expect_matches_reference(mutant,
                             "unterminated seed " + std::to_string(seed));

    mutant = text + "\n%base_address 0x\n";
    expect_matches_reference(mutant, "bare-0x seed " + std::to_string(seed));

    mutant = text + "\nint f(int x:99999999999999999999);\n";
    expect_matches_reference(mutant,
                             "overflow seed " + std::to_string(seed));
  }
}

TEST(FrontendProperties, GeneratedSpecsParseCleanly) {
  // The rendered model must round-trip through the full frontend with no
  // diagnostics — SpecGen emits only valid syntax by construction, so any
  // error here is a parser (or arena-lifetime) regression.
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const std::string text = splice::testing::generate_spec(seed).render();
    DiagnosticEngine diags;
    const auto spec = frontend::parse_spec(text, diags);
    ASSERT_TRUE(spec.has_value()) << "seed " << seed << "\n" << diags.render();
    EXPECT_FALSE(diags.has_errors()) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Pinned error-position goldens: exact (id, line, column) triples for a
// fixed set of malformed inputs.  These freeze the diagnostic contract of
// the zero-copy frontend — a refactor that shifts any reported position
// off by one (the classic line_start_ bug) fails here with the literal
// coordinates in the assertion.

struct Golden {
  const char* label;
  const char* text;
  DiagId id;
  std::uint32_t line;
  std::uint32_t column;
};

TEST(FrontendProperties, PinnedLexerErrorPositions) {
  const Golden goldens[] = {
      {"illegal byte mid-line", "int f(int a@);", DiagId::UnexpectedCharacter,
       1, 12},
      {"illegal byte after newline", "int f();\n  @", DiagId::UnexpectedCharacter,
       2, 3},
      {"unterminated comment start", "int f();\n/* never closed",
       DiagId::UnterminatedComment, 2, 1},
      {"comment spanning lines", "/* a\nb\nc", DiagId::UnterminatedComment, 1,
       1},
      {"bare 0x", "%base_address 0x;", DiagId::MalformedNumber, 1, 15},
      {"decimal overflow", "int f(int a:18446744073709551616);",
       DiagId::MalformedNumber, 1, 13},
      {"lone slash", "int / f();", DiagId::UnexpectedCharacter, 1, 5},
  };
  for (const Golden& g : goldens) {
    DiagnosticEngine diags;
    Lexer lexer(g.text, diags);
    (void)lexer.tokenize();
    const std::vector<Diagnostic> all = diags.all();
    bool found = false;
    for (const Diagnostic& d : all) {
      if (d.id == g.id && d.loc.line == g.line && d.loc.column == g.column) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << g.label << ": expected " << static_cast<int>(g.id)
                       << " at " << g.line << ":" << g.column << "\n"
                       << diags.render();
  }
}

TEST(FrontendProperties, PinnedParserErrorPositions) {
  const Golden goldens[] = {
      {"missing semicolon", "%bus_type plb\nint f()", DiagId::ExpectedToken,
       2, 7},
      {"missing close paren", "int f(int a;\n", DiagId::ExpectedToken, 1, 12},
      {"malformed user_type", "%user_type fix 32\nint f();",
       DiagId::MalformedDirective, 1, 1},
      {"unknown directive", "%frequency 50\nint f();",
       DiagId::UnknownDirective, 1, 1},
      {"missing parameter name", "int f(int);", DiagId::ExpectedIdentifier, 1,
       10},
  };
  for (const Golden& g : goldens) {
    DiagnosticEngine diags;
    (void)frontend::parse_spec(g.text, diags);
    const std::vector<Diagnostic> all = diags.all();
    bool found = false;
    for (const Diagnostic& d : all) {
      if (d.id == g.id && d.loc.line == g.line && d.loc.column == g.column) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << g.label << ": expected " << static_cast<int>(g.id)
                       << " at " << g.line << ":" << g.column << "\n"
                       << diags.render();
  }
}

}  // namespace
