// Structural sanity checks over every generated HDL file: a lightweight
// VHDL/Verilog linter (matched entity/architecture/process/module pairs,
// no unexpanded %MACRO% markers, balanced parentheses) swept over a corpus
// of specifications covering every extension and every bus.
#include <gtest/gtest.h>

#include <cctype>

#include "core/splice.hpp"

namespace {

using namespace splice;

// --- a minimal HDL structure linter ------------------------------------------

std::string strip_comments(const std::string& text, bool vhdl) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const bool comment = vhdl ? (text[i] == '-' && i + 1 < text.size() &&
                                 text[i + 1] == '-')
                              : (text[i] == '/' && i + 1 < text.size() &&
                                 text[i + 1] == '/');
    if (comment) {
      while (i < text.size() && text[i] != '\n') ++i;
      out += '\n';
      continue;
    }
    out += text[i];
  }
  return out;
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

void lint_vhdl(const std::string& filename, const std::string& raw) {
  const std::string text = strip_comments(raw, /*vhdl=*/true);
  // entity/end pairs: every "entity X is" has exactly one architecture.
  EXPECT_EQ(count_occurrences(text, "entity "),
            count_occurrences(text, "architecture "))
      << filename << ": every entity needs an architecture";
  // Generated processes are always labeled ("icob: process ...").
  EXPECT_EQ(count_occurrences(text, ": process"),
            count_occurrences(text, "end process"))
      << filename << ": process/end process mismatch";
  long parens = 0;
  for (char c : text) parens += c == '(' ? 1 : c == ')' ? -1 : 0;
  EXPECT_EQ(parens, 0) << filename << ": unbalanced parentheses";
  EXPECT_EQ(text.find("%"), std::string::npos)
      << filename << ": unexpanded template marker";
}

void lint_verilog(const std::string& filename, const std::string& raw) {
  const std::string text = strip_comments(raw, /*vhdl=*/false);
  // "endmodule" never carries a trailing space, so "module " counts only
  // the declarations and instantiation of submodules is "func_x name (".
  EXPECT_EQ(count_occurrences(text, "module "),
            count_occurrences(text, "endmodule"))
      << filename << ": module/endmodule mismatch";
  EXPECT_EQ(count_occurrences(text, "case ("),
            count_occurrences(text, "endcase"))
      << filename << ": case/endcase mismatch";
  long parens = 0;
  for (char c : text) parens += c == '(' ? 1 : c == ')' ? -1 : 0;
  EXPECT_EQ(parens, 0) << filename << ": unbalanced parentheses";
}

// --- the specification corpus ------------------------------------------------

struct Corpus {
  const char* name;
  const char* spec;
};

const Corpus kCorpus[] = {
    {"timer_plb",
     "%device_name t1\n%bus_type plb\n%bus_width 32\n"
     "%base_address 0x80000000\n%user_type llong, unsigned long long, 64\n"
     "void set(llong v);\nllong get();\n"},
    {"arrays_fcb",
     "%device_name t2\n%bus_type fcb\n%bus_width 32\n%burst_support true\n"
     "int sum(char n, int*:n xs);\nvoid fill(char*:16+ data);\n"},
    {"dma_plb",
     "%device_name t3\n%bus_type plb\n%bus_width 32\n"
     "%base_address 0x80000000\n%dma_support true\n"
     "void burst(int*:32^ block);\n"},
    {"multi_apb",
     "%device_name t4\n%bus_type apb\n%bus_width 32\n"
     "%base_address 0x80000000\nint work(int x):5;\nnowait kick(int v);\n"},
    {"byref_irq_ahb",
     "%device_name t5\n%bus_type ahb\n%bus_width 32\n"
     "%base_address 0x80000000\n%irq_support true\n"
     "int scale(int k, int*:4& xs);\n"},
    {"wide_opb",
     "%device_name t6\n%bus_type opb\n%bus_width 32\n"
     "%base_address 0x80000000\nint a();\nint b();\nint c();\nint d();\n"},
};

class HdlSanity : public ::testing::TestWithParam<Corpus> {};

TEST_P(HdlSanity, VhdlOutputIsStructurallySound) {
  Engine engine;
  DiagnosticEngine diags;
  auto artifacts = engine.generate(GetParam().spec, diags);
  ASSERT_TRUE(artifacts.has_value()) << diags.render();
  for (const auto& f : artifacts->hardware) {
    if (f.filename.size() > 4 &&
        f.filename.substr(f.filename.size() - 4) == ".vhd") {
      lint_vhdl(f.filename, f.content);
    }
  }
}

TEST_P(HdlSanity, VerilogOutputIsStructurallySound) {
  Engine engine;
  DiagnosticEngine diags;
  std::string spec = GetParam().spec;
  spec += "%target_hdl verilog\n";
  auto artifacts = engine.generate(spec, diags);
  ASSERT_TRUE(artifacts.has_value()) << diags.render();
  for (const auto& f : artifacts->hardware) {
    if (f.filename.size() > 2 &&
        f.filename.substr(f.filename.size() - 2) == ".v") {
      lint_verilog(f.filename, f.content);
    }
  }
}

TEST_P(HdlSanity, DriverSourcesHaveBalancedBracesEverywhere) {
  Engine engine;
  DiagnosticEngine diags;
  auto artifacts = engine.generate(GetParam().spec, diags);
  ASSERT_TRUE(artifacts.has_value()) << diags.render();
  for (const auto& f : artifacts->software) {
    long braces = 0;
    long parens = 0;
    for (char c : f.content) {
      braces += c == '{' ? 1 : c == '}' ? -1 : 0;
      parens += c == '(' ? 1 : c == ')' ? -1 : 0;
    }
    EXPECT_EQ(braces, 0) << f.filename;
    EXPECT_EQ(parens, 0) << f.filename;
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, HdlSanity, ::testing::ValuesIn(kCorpus),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
