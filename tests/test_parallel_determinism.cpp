// Determinism contract of the parallel generation pipeline: for every spec
// in the golden corpus, a run with 8 workers must produce the same file
// list, the same bytes and the same rendered diagnostics as a serial run —
// and the serial run is itself pinned by the golden fixtures, so
// transitively the parallel output is fixture-identical.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/splice.hpp"

namespace {

using namespace splice;

struct Corpus {
  const char* name;
  const char* spec;
};

// Same corpus as test_hdl_golden.cpp: every declaration extension and bus.
const Corpus kCorpus[] = {
    {"timer_plb",
     "%device_name t1\n%bus_type plb\n%bus_width 32\n"
     "%base_address 0x80000000\n%user_type llong, unsigned long long, 64\n"
     "void set(llong v);\nllong get();\n"},
    {"arrays_fcb",
     "%device_name t2\n%bus_type fcb\n%bus_width 32\n%burst_support true\n"
     "int sum(char n, int*:n xs);\nvoid fill(char*:16+ data);\n"},
    {"dma_plb",
     "%device_name t3\n%bus_type plb\n%bus_width 32\n"
     "%base_address 0x80000000\n%dma_support true\n"
     "void burst(int*:32^ block);\n"},
    {"multi_apb",
     "%device_name t4\n%bus_type apb\n%bus_width 32\n"
     "%base_address 0x80000000\nint work(int x):5;\nnowait kick(int v);\n"},
    {"byref_irq_ahb",
     "%device_name t5\n%bus_type ahb\n%bus_width 32\n"
     "%base_address 0x80000000\n%irq_support true\n"
     "int scale(int k, int*:4& xs);\n"},
    {"wide_opb",
     "%device_name t6\n%bus_type opb\n%bus_width 32\n"
     "%base_address 0x80000000\nint a();\nint b();\nint c();\nint d();\n"},
};

Engine parallel_engine(support::JobPool* pool) {
  EngineOptions opt;
  opt.jobs = 8;
  opt.pool = pool;
  return Engine(adapters::AdapterRegistry::instance(), opt);
}

void expect_identical(const GeneratedArtifacts& serial,
                      const GeneratedArtifacts& par, const char* what) {
  ASSERT_EQ(serial.filenames(), par.filenames()) << what;
  for (const auto& name : serial.filenames()) {
    const auto* a = serial.find(name);
    const auto* b = par.find(name);
    ASSERT_NE(b, nullptr) << what << ": " << name;
    EXPECT_EQ(a->content, b->content) << what << ": " << name;
    EXPECT_EQ(a->purpose, b->purpose) << what << ": " << name;
  }
}

class ParallelDeterminism : public ::testing::TestWithParam<Corpus> {};

TEST_P(ParallelDeterminism, EightWorkersMatchSerialByteForByte) {
  for (const bool verilog : {false, true}) {
    std::string spec = GetParam().spec;
    if (verilog) spec += "%target_hdl verilog\n";

    Engine serial;
    DiagnosticEngine serial_diags;
    auto serial_out = serial.generate(spec, serial_diags);
    ASSERT_TRUE(serial_out.has_value()) << serial_diags.render();

    support::JobPool pool(7);
    Engine par = parallel_engine(&pool);
    DiagnosticEngine par_diags;
    auto par_out = par.generate(spec, par_diags);
    ASSERT_TRUE(par_out.has_value()) << par_diags.render();

    expect_identical(*serial_out, *par_out,
                     verilog ? "verilog" : "vhdl");
    EXPECT_EQ(serial_diags.render(), par_diags.render());
  }
}

TEST_P(ParallelDeterminism, EphemeralPoolMatchesSharedPool) {
  // jobs > 1 without a shared pool spins up an engine-owned pool; the
  // output contract is the same.
  Engine par = parallel_engine(nullptr);
  Engine serial;
  DiagnosticEngine d1, d2;
  auto a = serial.generate(GetParam().spec, d1);
  auto b = par.generate(GetParam().spec, d2);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  expect_identical(*a, *b, "ephemeral");
}

TEST_P(ParallelDeterminism, RepeatedParallelRunsAreStable) {
  support::JobPool pool(7);
  Engine par = parallel_engine(&pool);

  DiagnosticEngine d0;
  auto first = par.generate(GetParam().spec, d0);
  ASSERT_TRUE(first.has_value());
  for (int round = 0; round < 5; ++round) {
    DiagnosticEngine d;
    auto again = par.generate(GetParam().spec, d);
    ASSERT_TRUE(again.has_value());
    expect_identical(*first, *again, "repeat");
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, ParallelDeterminism,
                         ::testing::ValuesIn(kCorpus),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(ParallelDeterminismDiags, FailingSpecRendersIdentically) {
  // Lint is clean here, but validation produces ordered diagnostics: a
  // warning (%base_address on the non-memory-mapped fcb) followed by
  // normal generation.  Errors exercise the merge path too.
  const char* kWarn =
      "%device_name w1\n%bus_type fcb\n%bus_width 32\n"
      "%base_address 0x80000000\n"
      "int sum(char n, int*:n xs);\n";
  const char* kBad =
      "%device_name b1\n%bus_type plb\n%bus_width 32\n"
      "void f(int* xs);\nvoid f(int v);\n";

  for (const char* spec : {kWarn, kBad}) {
    Engine serial;
    DiagnosticEngine d1;
    auto a = serial.generate(spec, d1);

    support::JobPool pool(7);
    EngineOptions opt;
    opt.jobs = 8;
    opt.pool = &pool;
    Engine par(adapters::AdapterRegistry::instance(), opt);
    DiagnosticEngine d2;
    auto b = par.generate(spec, d2);

    EXPECT_EQ(a.has_value(), b.has_value());
    EXPECT_EQ(d1.render(), d2.render());
  }
}

}  // namespace
