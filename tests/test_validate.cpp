// Semantic validation tests: the §3.3 language rules and the §3.2 / ch.7
// bus-capability checks.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "ir/validate.hpp"

namespace {

using namespace splice;
using namespace splice::ir;

DeviceSpec parse(std::string_view text) {
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  EXPECT_TRUE(spec.has_value()) << diags.render();
  return spec ? std::move(*spec) : DeviceSpec{};
}

const std::string kHeader =
    "%device_name dev\n%bus_type plb\n%bus_width 32\n"
    "%base_address 0x80000000\n";

BusCapabilities plb_caps() {
  BusCapabilities caps;
  caps.name = "plb";
  caps.allowed_widths = {32, 64};
  caps.memory_mapped = true;
  caps.supports_dma = true;
  caps.supports_burst = false;
  return caps;
}

TEST(Validate, AcceptsCompleteSpecAndAssignsFuncIds) {
  auto spec = parse(kHeader + "int a();\nint b(int x):3;\nint c();\n");
  DiagnosticEngine diags;
  EXPECT_TRUE(validate(spec, diags)) << diags.render();
  EXPECT_EQ(spec.functions[0].func_id, 1u);  // 0 reserved for status
  EXPECT_EQ(spec.functions[1].func_id, 2u);
  EXPECT_EQ(spec.functions[2].func_id, 5u);  // after 3 instances of b
  EXPECT_EQ(spec.total_instances(), 5u);
  EXPECT_EQ(spec.func_id_width(), 3u);       // ids 0..5 need 3 bits
}

TEST(Validate, MissingRequiredDirectives) {
  auto spec = parse("int a();\n");
  DiagnosticEngine diags;
  EXPECT_FALSE(validate(spec, diags));
  EXPECT_TRUE(diags.contains(DiagId::MissingDeviceName));
  EXPECT_TRUE(diags.contains(DiagId::MissingBusType));
  EXPECT_TRUE(diags.contains(DiagId::MissingBusWidth));
}

TEST(Validate, DuplicateFunctionName) {
  auto spec = parse(kHeader + "int a();\nint a(int x);\n");
  DiagnosticEngine diags;
  EXPECT_FALSE(validate(spec, diags));
  EXPECT_TRUE(diags.contains(DiagId::DuplicateFunctionName));
}

TEST(Validate, DuplicateParamName) {
  auto spec = parse(kHeader + "void f(int x, char x);\n");
  DiagnosticEngine diags;
  EXPECT_FALSE(validate(spec, diags));
  EXPECT_TRUE(diags.contains(DiagId::DuplicateParamName));
}

TEST(Validate, PointerWithoutBoundRejected) {
  // §3.1.2: pointers must carry an explicit or implicit bound.
  auto spec = parse(kHeader + "void f(int* x);\n");
  DiagnosticEngine diags;
  EXPECT_FALSE(validate(spec, diags));
  EXPECT_TRUE(diags.contains(DiagId::PointerWithoutBound));
}

TEST(Validate, ImplicitIndexMustExist) {
  auto spec = parse(kHeader + "void f(int*:n y);\n");
  DiagnosticEngine diags;
  EXPECT_FALSE(validate(spec, diags));
  EXPECT_TRUE(diags.contains(DiagId::ImplicitIndexUnknown));
}

TEST(Validate, ImplicitIndexOrderingRule) {
  // §3.3: void f(int*:x y, int x) is rejected; the reverse is valid.
  auto bad = parse(kHeader + "void f(int*:x y, int x);\n");
  DiagnosticEngine diags;
  EXPECT_FALSE(validate(bad, diags));
  EXPECT_TRUE(diags.contains(DiagId::ImplicitIndexNotBefore));

  auto good = parse(kHeader + "void f(int x, int*:x y);\n");
  DiagnosticEngine diags2;
  EXPECT_TRUE(validate(good, diags2)) << diags2.render();
  EXPECT_TRUE(good.functions[0].inputs[0].used_as_index);
}

TEST(Validate, ReturnMayUseAnyInputAsIndex) {
  // Returns transfer last, so any input is a legal implicit bound.
  auto spec = parse(kHeader + "int*:n get(char n);\n");
  DiagnosticEngine diags;
  EXPECT_TRUE(validate(spec, diags)) << diags.render();
}

TEST(Validate, ImplicitIndexMustBeScalarInteger) {
  auto spec = parse(kHeader + "void f(float x, int*:x y);\n");
  DiagnosticEngine diags;
  EXPECT_FALSE(validate(spec, diags));
  EXPECT_TRUE(diags.contains(DiagId::ImplicitIndexNotScalar));
}

TEST(Validate, PackingRequiresArrayBound) {
  auto spec = parse(kHeader + "void f(char+ x);\n");
  DiagnosticEngine diags;
  EXPECT_FALSE(validate(spec, diags));
  EXPECT_TRUE(diags.contains(DiagId::PackingOnScalar));
}

TEST(Validate, PackingWiderThanBusWarns) {
  auto spec = parse(kHeader + "void f(double*:4+ x);\n");
  DiagnosticEngine diags;
  EXPECT_TRUE(validate(spec, diags)) << diags.render();
  EXPECT_TRUE(diags.contains(DiagId::PackingTooWide));
}

TEST(Validate, DmaRequiresDirective) {
  // §3.2.2: '^' without %dma_support is an error.
  auto spec = parse(kHeader + "void f(int*:8^ x);\n");
  DiagnosticEngine diags;
  EXPECT_FALSE(validate(spec, diags));
  EXPECT_TRUE(diags.contains(DiagId::DmaNotEnabled));
}

TEST(Validate, NowaitWithoutInputsRejected) {
  // Found by the spec fuzzer: a zero-input nowait declaration generates a
  // stub with no input and no output states — nothing ever enacts it, and
  // the HDL lint rejects the dead bus interface downstream.  Catch it at
  // validation instead.
  auto spec = parse(kHeader + "nowait f();\n");
  DiagnosticEngine diags;
  EXPECT_FALSE(validate(spec, diags));
  EXPECT_TRUE(diags.contains(DiagId::NowaitWithoutInputs));
}

TEST(Validate, BlockingVoidWithoutInputsAccepted) {
  // The blocking flavour stays legal: the synchronizing status read is a
  // real transaction.
  auto spec = parse(kHeader + "void f();\n");
  DiagnosticEngine diags;
  EXPECT_TRUE(validate(spec, diags)) << diags.render();
}

TEST(Validate, ZeroInstancesRejected) {
  auto spec = parse(kHeader + "void f(int x):0;\n");
  DiagnosticEngine diags;
  EXPECT_FALSE(validate(spec, diags));
  EXPECT_TRUE(diags.contains(DiagId::ZeroInstanceCount));
}

TEST(Validate, ZeroElementCountRejected) {
  auto spec = parse(kHeader + "void f(int*:0 x);\n");
  DiagnosticEngine diags;
  EXPECT_FALSE(validate(spec, diags));
  EXPECT_TRUE(diags.contains(DiagId::ZeroElementCount));
}

// --- bus capability checks (the ch.7 parameter checking routine) ------------

TEST(Validate, UnsupportedBusWidth) {
  auto spec = parse(
      "%device_name d\n%bus_type plb\n%bus_width 16\n"
      "%base_address 0x0\nint a();\n");
  DiagnosticEngine diags;
  auto caps = plb_caps();
  EXPECT_FALSE(validate(spec, diags, &caps));
  EXPECT_TRUE(diags.contains(DiagId::UnsupportedBusWidth));
}

TEST(Validate, MemoryMappedBusNeedsBaseAddress) {
  auto spec = parse("%device_name d\n%bus_type plb\n%bus_width 32\nint a();\n");
  DiagnosticEngine diags;
  auto caps = plb_caps();
  EXPECT_FALSE(validate(spec, diags, &caps));
  EXPECT_TRUE(diags.contains(DiagId::MissingBaseAddress));
}

TEST(Validate, NonMappedBusWarnsOnBaseAddress) {
  auto spec = parse(
      "%device_name d\n%bus_type fcb\n%bus_width 32\n"
      "%base_address 0x0\nint a();\n");
  BusCapabilities caps;
  caps.name = "fcb";
  caps.allowed_widths = {32};
  caps.memory_mapped = false;
  DiagnosticEngine diags;
  EXPECT_TRUE(validate(spec, diags, &caps)) << diags.render();
  EXPECT_TRUE(diags.contains(DiagId::BaseAddressIgnored));
}

TEST(Validate, DmaUnsupportedByBus) {
  auto spec = parse(
      "%device_name d\n%bus_type opb\n%bus_width 32\n"
      "%base_address 0x0\n%dma_support true\nint a();\n");
  BusCapabilities caps;
  caps.name = "opb";
  caps.allowed_widths = {32};
  caps.memory_mapped = true;
  caps.supports_dma = false;
  DiagnosticEngine diags;
  EXPECT_FALSE(validate(spec, diags, &caps));
  EXPECT_TRUE(diags.contains(DiagId::DmaNotSupportedByBus));
}

TEST(Validate, BurstUnsupportedByBus) {
  auto spec = parse(kHeader + "%burst_support true\nint a();\n");
  DiagnosticEngine diags;
  auto caps = plb_caps();  // supports_burst = false (no CPU-side bursts)
  EXPECT_FALSE(validate(spec, diags, &caps));
  EXPECT_TRUE(diags.contains(DiagId::BurstNotSupportedByBus));
}

TEST(Validate, FuncIdSpaceExhausted) {
  auto spec = parse(kHeader + "void f(int x):300;\n");
  DiagnosticEngine diags;
  auto caps = plb_caps();
  caps.max_func_id_width = 8;
  EXPECT_FALSE(validate(spec, diags, &caps));
  EXPECT_TRUE(diags.contains(DiagId::FuncIdSpaceExhausted));
}

}  // namespace

namespace {

using namespace splice;
using namespace splice::ir;

TEST(GlobalPacking, DirectiveInfersPackingForNarrowArrays) {
  // §3.2.2: %packing_support true packs every eligible array transfer.
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(
      "%device_name d\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x0\n%packing_support true\n"
      "int f(char*:8 xs, int*:4 ys, short s);\n",
      diags);
  ASSERT_TRUE(spec.has_value()) << diags.render();
  ASSERT_TRUE(validate(*spec, diags)) << diags.render();
  const auto& fn = spec->functions[0];
  EXPECT_TRUE(fn.inputs[0].packed) << "8-bit array packs";
  EXPECT_FALSE(fn.inputs[1].packed) << "32-bit array cannot pack";
  EXPECT_FALSE(fn.inputs[2].packed) << "scalars never pack";
}

TEST(GlobalPacking, OffByDefaultAndDmaExcluded) {
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(
      "%device_name d\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x0\n%packing_support true\n%dma_support true\n"
      "void f(char*:8^ xs);\n",
      diags);
  ASSERT_TRUE(spec.has_value()) << diags.render();
  ASSERT_TRUE(validate(*spec, diags)) << diags.render();
  EXPECT_FALSE(spec->functions[0].inputs[0].packed)
      << "DMA transfers move whole blocks; no lane packing inferred";
}

}  // namespace
