// Compiled-backend tests: static scheduling edge cases (combinational
// cycles, constant folding, unit ordering), clock gating, mid-run backend
// switches, and interpreter-vs-compiled lockstep equivalence on real
// platforms (timer device on every bus, multi-instance specs, generated
// fuzz specs).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "devices/timer.hpp"
#include "rtl/compile/executor.hpp"
#include "rtl/compile/lowering.hpp"
#include "rtl/simulator.hpp"
#include "rtl/trace.hpp"
#include "runtime/platform.hpp"
#include "testing/conformance.hpp"
#include "testing/spec_gen.hpp"

namespace {

using namespace splice;
using namespace splice::rtl;
namespace st = splice::testing;

// Two units feeding each other: x = a | y, y = x & b.  A genuine
// strongly connected component in the unit graph, but one that always
// converges (b masks the feedback).
class CrossPair : public Module {
 public:
  explicit CrossPair(Simulator& sim)
      : Module("cross"),
        a_(sim.signal("a", 1)),
        b_(sim.signal("b", 1)),
        x_(sim.signal("x", 1)),
        y_(sim.signal("y", 1)) {
    watch_all(a_, b_, x_, y_);
    clocked_none();
  }
  void eval_comb() override {
    x_.drive(a_.high() || y_.high());
    y_.drive(x_.high() && b_.high());
  }
  bool lower_comb(compile::CombBuilder& cb) override {
    auto& u1 = cb.unit("x_or");
    u1.out(x_, u1.bor(u1.in(a_), u1.in(y_)));
    auto& u2 = cb.unit("y_and");
    u2.out(y_, u2.band(u2.in(x_), u2.in(b_)));
    return true;
  }
  Signal &a_, &b_, &x_, &y_;
};

TEST(CompiledSchedule, CyclicRegionConvergesToFixPoint) {
  Simulator sim;
  auto& mod = sim.add<CrossPair>(sim);
  sim.set_backend(Simulator::Backend::kCompiled);
  sim.settle();

  const compile::Executor* exec = sim.compiled();
  ASSERT_NE(exec, nullptr);
  bool saw_cyclic = false;
  for (const auto& r : exec->program().regions) saw_cyclic |= r.cyclic;
  EXPECT_TRUE(saw_cyclic) << exec->program().dump();

  mod.a_.drive(true);
  sim.settle();
  EXPECT_TRUE(mod.x_.high());
  EXPECT_FALSE(mod.y_.high());

  mod.b_.drive(true);
  sim.settle();
  EXPECT_TRUE(mod.y_.high());
  EXPECT_GE(exec->stats().region_iterations, 1u);

  mod.a_.drive(false);
  sim.settle();
  // x latches through y once both were high: x = 0 | 1 = 1 stays up.
  EXPECT_TRUE(mod.x_.high());
}

// A natively lowered x = !x: the cyclic region can never reach a fix
// point and must throw the region diagnostic (naming the loop) rather
// than spin.
class NotLoop : public Module {
 public:
  explicit NotLoop(Simulator& sim)
      : Module("notloop"), x_(sim.signal("x", 1)) {
    watch(x_);
    clocked_none();
  }
  void eval_comb() override { x_.drive(!x_.high()); }
  bool lower_comb(compile::CombBuilder& cb) override {
    auto& u = cb.unit("invert");
    u.out(x_, u.lnot(u.in(x_)));
    return true;
  }
  Signal& x_;
};

TEST(CompiledSchedule, DivergentLoopThrowsRegionDiagnostic) {
  Simulator sim;
  sim.add<NotLoop>(sim);
  sim.set_backend(Simulator::Backend::kCompiled);
  try {
    sim.settle();
    FAIL() << "divergent native loop settled";
  } catch (const SpliceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("compiled region"), std::string::npos) << what;
    EXPECT_NE(what.find("invert"), std::string::npos) << what;
  }
}

// Declared out of dependency order: unit "c_stage" (reads b) comes
// before unit "b_stage" (reads a).  The scheduler must topo-sort them so
// the acyclic region settles in a single pass.
class AddChain : public Module {
 public:
  explicit AddChain(Simulator& sim)
      : Module("chain"),
        a_(sim.signal("ca", 8)),
        b_(sim.signal("cb", 8)),
        c_(sim.signal("cc", 8)) {
    watch_all(a_, b_);
    clocked_none();
  }
  void eval_comb() override {
    c_.drive(b_.get() + 1);
    b_.drive(a_.get() + 1);
  }
  bool lower_comb(compile::CombBuilder& cb) override {
    auto& uc = cb.unit("c_stage");
    uc.out(c_, uc.add(uc.in(b_), uc.imm(std::uint64_t{1})));
    auto& ub = cb.unit("b_stage");
    ub.out(b_, ub.add(ub.in(a_), ub.imm(std::uint64_t{1})));
    return true;
  }
  Signal &a_, &b_, &c_;
};

TEST(CompiledSchedule, TopoSortsOutOfOrderUnitsIntoOnePass) {
  Simulator sim;
  auto& mod = sim.add<AddChain>(sim);
  sim.set_backend(Simulator::Backend::kCompiled);
  mod.a_.drive(std::uint64_t{5});
  sim.settle();
  EXPECT_EQ(mod.b_.get(), 6u);
  EXPECT_EQ(mod.c_.get(), 7u);

  const compile::Executor* exec = sim.compiled();
  ASSERT_NE(exec, nullptr);
  const auto& units = exec->program().units;
  std::size_t idx_b = units.size(), idx_c = units.size();
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (units[i].name.find("b_stage") != std::string::npos) idx_b = i;
    if (units[i].name.find("c_stage") != std::string::npos) idx_c = i;
  }
  ASSERT_LT(idx_b, units.size());
  ASSERT_LT(idx_c, units.size());
  EXPECT_LT(idx_b, idx_c) << exec->program().dump();
  for (const auto& r : exec->program().regions) EXPECT_FALSE(r.cyclic);

  // Acyclic single-pass schedule: more drives, still zero fix-point
  // iterations.
  for (std::uint64_t v = 0; v < 8; ++v) {
    mod.a_.drive(v);
    sim.settle();
    EXPECT_EQ(mod.c_.get(), v + 2);
  }
  EXPECT_EQ(exec->stats().region_iterations, 0u);
}

// Everything below feeds from imm(): the builder must fold the whole
// expression at compile time, leaving exactly one kOut from a constant
// slot and an empty trigger set.
class ConstDrive : public Module {
 public:
  explicit ConstDrive(Simulator& sim)
      : Module("konst"), s_(sim.signal("ks", 8)) {
    clocked_none();
  }
  void eval_comb() override { s_.drive(std::uint64_t{18}); }
  bool lower_comb(compile::CombBuilder& cb) override {
    auto& u = cb.unit("fold");
    u.out(s_, u.add(u.imm(std::uint64_t{2}), u.shl(u.imm(std::uint64_t{1}), u.imm(std::uint64_t{4}))));
    return true;
  }
  Signal& s_;
};

TEST(CompiledSchedule, ConstantExpressionsFoldToSingleOut) {
  Simulator sim;
  auto& mod = sim.add<ConstDrive>(sim);
  sim.set_backend(Simulator::Backend::kCompiled);
  sim.settle();
  EXPECT_EQ(mod.s_.get(), 18u);

  const compile::Executor* exec = sim.compiled();
  ASSERT_NE(exec, nullptr);
  const compile::Unit* fold = nullptr;
  for (const auto& u : exec->program().units) {
    if (u.name.find("fold") != std::string::npos) fold = &u;
  }
  ASSERT_NE(fold, nullptr);
  EXPECT_EQ(fold->instr_count, 1u);
  EXPECT_EQ(exec->program().code[fold->first_instr].op, compile::Op::kOut);
  EXPECT_TRUE(fold->inputs.empty());
}

// A gated counter: ticks only while `en` is high, declares its clocked
// trigger, and reports itself idle when disabled — the compiled backend
// must skip its edges entirely while it sleeps and wake it (same
// cycle semantics as the interpreter) when `en` changes.
class GatedCounter : public Module {
 public:
  explicit GatedCounter(Simulator& sim)
      : Module("gcnt"),
        en_(sim.signal("en", 1)),
        q_(sim.signal("gq", 8)) {
    watch_clocked(en_);
  }
  void clock_edge() override {
    if (en_.high()) q_.set(q_.get() + 1);
    set_clock_busy(en_.high());
  }
  Signal &en_, &q_;
};

TEST(CompiledBackend, IdleClockedModulesSkipEdgesAndWakeOnEvent) {
  Simulator sim;
  auto& mod = sim.add<GatedCounter>(sim);
  sim.set_backend(Simulator::Backend::kCompiled);

  sim.step(5);  // disabled: one spurious first edge, then gated off
  EXPECT_EQ(mod.q_.get(), 0u);
  const compile::Executor* exec = sim.compiled();
  ASSERT_NE(exec, nullptr);
  EXPECT_GE(exec->stats().clock_edges_skipped, 4u);

  mod.en_.drive(true);  // external poke must wake the sleeping module
  sim.step(4);
  EXPECT_EQ(mod.q_.get(), 4u);

  mod.en_.drive(false);
  sim.step(1);  // one more edge observes the drop and goes back to sleep
  const std::uint64_t skipped = exec->stats().clock_edges_skipped;
  sim.step(4);
  EXPECT_EQ(mod.q_.get(), 4u);
  EXPECT_EQ(exec->stats().clock_edges_skipped, skipped + 4);
}

// Toggling register with no declarations: runs every cycle under both
// backends.  Switch back and forth mid-run (and change the structure
// mid-run) — the state must stay coherent across every transition.
class Toggler : public Module {
 public:
  explicit Toggler(Simulator& sim) : Module("tog"), q_(sim.signal("tq", 1)) {}
  void clock_edge() override { q_.set(!q_.high()); }
  Signal& q_;
};

TEST(CompiledBackend, SwitchingBackendsMidRunKeepsStateCoherent) {
  Simulator sim;
  auto& mod = sim.add<Toggler>(sim);
  Trace trace(sim);
  trace.watch(mod.q_);

  sim.step(3);
  EXPECT_EQ(sim.backend(), Simulator::Backend::kInterp);
  sim.set_backend(Simulator::Backend::kCompiled);
  sim.step(3);
  EXPECT_EQ(sim.backend(), Simulator::Backend::kCompiled);
  sim.set_backend(Simulator::Backend::kInterp);
  sim.step(3);

  // Structural change while compiled: the program is rebuilt lazily.
  sim.set_backend(Simulator::Backend::kCompiled);
  sim.signal("late_arrival", 4);
  sim.step(3);

  EXPECT_EQ(sim.cycle(), 12u);
  const auto& hist = trace.history("tq");
  ASSERT_EQ(hist.size(), 12u);
  for (std::size_t i = 0; i < hist.size(); ++i) {
    EXPECT_EQ(hist[i], i % 2) << "cycle " << i;
  }
}

// --- Whole-platform equivalence -----------------------------------------

struct TimerRun {
  std::vector<std::string> names;
  std::vector<std::vector<std::uint64_t>> histories;
  std::vector<std::vector<std::uint64_t>> outputs;
  std::vector<std::uint64_t> bus_cycles;
};

TimerRun run_timer(const std::string& bus, Simulator::Backend be) {
  devices::TimerCore core;
  runtime::VirtualPlatform vp(devices::make_timer_spec(bus),
                              devices::make_timer_behaviors(core));
  vp.sim().add<devices::TimerTick>(core);
  vp.sim().set_backend(be);
  Trace trace(vp.sim());
  TimerRun run;
  for (const auto& s : vp.sim().signals()) {
    run.names.push_back(s.name());
    trace.watch(s.name());
  }
  const std::vector<std::pair<std::string, drivergen::CallArgs>> script = {
      {"enable", {}},        {"set_threshold", {{25}}},
      {"get_threshold", {}}, {"get_snapshot", {}},
      {"get_status", {}},    {"get_snapshot", {}},
      {"get_clock", {}},     {"disable", {}},
      {"get_status", {}},
  };
  for (const auto& [fn, args] : script) {
    auto r = vp.call(fn, args);
    run.outputs.push_back(r.outputs);
    run.bus_cycles.push_back(r.bus_cycles);
  }
  for (const auto& n : run.names) run.histories.push_back(trace.history(n));
  EXPECT_TRUE(vp.checker().clean())
      << bus << ": " << vp.checker().violations().front();
  return run;
}

TEST(CompiledBackend, TimerPlatformTraceEquivalentOnEveryBus) {
  for (const std::string bus : {"plb", "opb", "apb", "ahb", "fcb"}) {
    SCOPED_TRACE(bus);
    TimerRun interp = run_timer(bus, Simulator::Backend::kInterp);
    TimerRun compiled = run_timer(bus, Simulator::Backend::kCompiled);
    EXPECT_EQ(interp.outputs, compiled.outputs);
    EXPECT_EQ(interp.bus_cycles, compiled.bus_cycles);
    ASSERT_EQ(interp.names, compiled.names);
    for (std::size_t i = 0; i < interp.names.size(); ++i) {
      if (interp.histories[i] == compiled.histories[i]) continue;
      std::size_t cyc = 0;
      const auto& a = interp.histories[i];
      const auto& b = compiled.histories[i];
      while (cyc < a.size() && cyc < b.size() && a[cyc] == b[cyc]) ++cyc;
      ADD_FAILURE() << "signal '" << interp.names[i]
                    << "' diverges at cycle " << cyc << " (len " << a.size()
                    << " vs " << b.size() << ")";
    }
  }
}

// Multiple instances share one elaborated structure (per-instance state,
// common decode); replay the driver against both backends in lockstep.
TEST(CompiledBackend, MultiInstanceSpecRunsLockstepClean) {
  st::SpecModel model;
  model.device_name = "multi_dev";
  model.bus_type = "plb";
  model.base_address = 0x40000000;
  st::FunctionModel f;
  f.name = "accum";
  f.ret = st::FunctionModel::Ret::Value;
  f.output.type = "int";
  f.instances = 3;
  st::ParamModel p;
  p.type = "int";
  p.name = "a";
  f.inputs = {p};
  model.functions = {f};

  st::OracleOptions opt;
  opt.backend = st::OracleBackend::kLockstep;
  opt.calls_per_function = 4;
  opt.check_equivalence = false;
  const st::OracleResult r = st::run_conformance(model, opt);
  EXPECT_TRUE(r.ok()) << (r.failures.empty() ? "" : r.failures.front());
  EXPECT_EQ(r.backend_mismatches, 0u);
  EXPECT_GT(r.calls, 0u);
}

// A slice of the fuzzer's default campaign, pinned by seed: generated
// feature-mix specs replayed in lockstep must never diverge.
TEST(CompiledBackend, GeneratedSpecsRunLockstepClean) {
  for (std::uint64_t seed : {7u, 21u, 33u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const st::SpecModel model = st::generate_spec(seed);
    st::OracleOptions opt;
    opt.backend = st::OracleBackend::kLockstep;
    opt.call_seed = seed;
    opt.check_equivalence = false;
    const st::OracleResult r = st::run_conformance(model, opt);
    EXPECT_TRUE(r.ok()) << (r.failures.empty() ? "" : r.failures.front());
    EXPECT_EQ(r.backend_mismatches, 0u);
  }
}

}  // namespace
