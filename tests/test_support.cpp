// Unit tests for the support layer: string helpers, bit utilities,
// diagnostics, and the text-table renderer.
#include <gtest/gtest.h>

#include "support/bits.hpp"
#include "support/diagnostics.hpp"
#include "support/strings.hpp"
#include "support/text_table.hpp"

namespace {

using namespace splice;

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(str::trim("  hello  "), "hello");
  EXPECT_EQ(str::trim("\t\nx\r "), "x");
  EXPECT_EQ(str::trim(""), "");
  EXPECT_EQ(str::trim("   "), "");
}

TEST(Strings, CaseConversionAndCompare) {
  EXPECT_EQ(str::to_lower("AbC_1"), "abc_1");
  EXPECT_EQ(str::to_upper("hw_timer"), "HW_TIMER");
  EXPECT_TRUE(str::iequals("PLB", "plb"));
  EXPECT_FALSE(str::iequals("plb", "plb2"));
}

TEST(Strings, SplitAndJoin) {
  auto parts = str::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(str::join({"x", "y"}, "_"), "x_y");
  auto words = str::split_ws("  one\ttwo \n three ");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[1], "two");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(str::replace_all("a%X%b%X%", "%X%", "1"), "a1b1");
  EXPECT_EQ(str::replace_all("abc", "", "z"), "abc");
}

TEST(Strings, ParseNumbers) {
  EXPECT_EQ(str::parse_u64("12345").value(), 12345u);
  EXPECT_FALSE(str::parse_u64("12x").has_value());
  EXPECT_FALSE(str::parse_u64("").has_value());
  EXPECT_FALSE(str::parse_u64("99999999999999999999999").has_value());
  EXPECT_EQ(str::parse_hex("0x8000401C").value(), 0x8000401Cu);
  EXPECT_EQ(str::parse_hex("ff").value(), 0xFFu);
  EXPECT_FALSE(str::parse_hex("0xZZ").has_value());
}

TEST(Strings, IdentifierPredicate) {
  EXPECT_TRUE(str::is_identifier("get_status"));
  EXPECT_TRUE(str::is_identifier("x1"));
  EXPECT_FALSE(str::is_identifier("1x"));
  EXPECT_FALSE(str::is_identifier("_x"));  // grammar: alpha first
  EXPECT_FALSE(str::is_identifier(""));
}

TEST(Strings, HexRendering) {
  EXPECT_EQ(str::hex(0x1C, 8), "0x0000001C");
  EXPECT_EQ(str::hex(0, 1), "0x0");
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(bits::ceil_div(64, 32), 2u);
  EXPECT_EQ(bits::ceil_div(65, 32), 3u);
  EXPECT_EQ(bits::ceil_div(1, 32), 1u);
}

TEST(Bits, BitsForCount) {
  EXPECT_EQ(bits::bits_for_count(2), 1u);
  EXPECT_EQ(bits::bits_for_count(3), 2u);
  EXPECT_EQ(bits::bits_for_count(16), 4u);
  EXPECT_EQ(bits::bits_for_count(17), 5u);
}

TEST(Bits, LowMask) {
  EXPECT_EQ(bits::low_mask(8), 0xFFu);
  EXPECT_EQ(bits::low_mask(0), 0u);
  EXPECT_EQ(bits::low_mask(64), ~std::uint64_t{0});
}

TEST(Bits, OneHot) {
  EXPECT_TRUE(bits::is_one_hot(0x10));
  EXPECT_FALSE(bits::is_one_hot(0x11));
  EXPECT_FALSE(bits::is_one_hot(0));
  EXPECT_EQ(bits::one_hot_index(0x10), 4u);
  EXPECT_EQ(bits::one_hot_index(1), 0u);
}

TEST(Diagnostics, CollectsAndCounts) {
  DiagnosticEngine diags;
  EXPECT_FALSE(diags.has_errors());
  diags.warning(DiagId::PackingTooWide, "w");
  EXPECT_FALSE(diags.has_errors());
  diags.error(DiagId::MissingBusType, "e", SourceLoc{3, 1});
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 1u);
  EXPECT_TRUE(diags.contains(DiagId::MissingBusType));
  EXPECT_FALSE(diags.contains(DiagId::MissingBusWidth));
  EXPECT_NE(diags.render().find("3:1"), std::string::npos);
  diags.clear();
  EXPECT_FALSE(diags.has_errors());
  EXPECT_TRUE(diags.all().empty());
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"name", "cycles"});
  t.set_alignment({TextTable::Align::Left, TextTable::Align::Right});
  t.add_row({"plb", "123"});
  t.add_row({"fcb", "7"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name |"), std::string::npos);
  EXPECT_NE(out.find("|    123 |"), std::string::npos);
  EXPECT_NE(out.find("|      7 |"), std::string::npos);
}

}  // namespace
