// The %irq_support extension (thesis §10.2, implemented): directive
// parsing, capability validation, generated-HDL IRQ ports, and the
// interrupt-driven wait replacing CALC_DONE polling on strictly
// synchronous buses.
#include <gtest/gtest.h>

#include "adapters/registry.hpp"
#include "core/splice.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "runtime/cpu.hpp"
#include "runtime/platform.hpp"
#include "support/diagnostics.hpp"

namespace {

using namespace splice;

ir::DeviceSpec spec_from(const std::string& bus, bool irq,
                         const std::string& body = "int f(int x);\n") {
  std::string text = "%device_name irqdev\n%bus_type " + bus +
                     "\n%bus_width 32\n" +
                     (bus != "fcb" ? "%base_address 0x80000000\n" : "") +
                     (irq ? "%irq_support true\n" : "") + body;
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  EXPECT_TRUE(spec.has_value()) << diags.render();
  EXPECT_TRUE(ir::validate(*spec, diags)) << diags.render();
  return std::move(*spec);
}

TEST(Interrupts, DirectiveParses) {
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec("%irq_support true\n", diags);
  ASSERT_TRUE(spec.has_value());
  EXPECT_TRUE(spec->target.irq_support);
  auto spaced = frontend::parse_spec("% interrupt support true\n", diags);
  ASSERT_TRUE(spaced.has_value());
  EXPECT_TRUE(spaced->target.irq_support);
}

TEST(Interrupts, CapabilityValidation) {
  // FCB and OPB have no interrupt line in this tool's support matrix.
  for (const char* bus : {"fcb", "opb"}) {
    auto spec = spec_from(bus, true);
    const auto* adapter = adapters::AdapterRegistry::instance().find(bus);
    DiagnosticEngine diags;
    EXPECT_FALSE(adapter->check_parameters(spec, diags)) << bus;
    EXPECT_TRUE(diags.contains(DiagId::IrqNotSupportedByBus)) << bus;
  }
  for (const char* bus : {"plb", "apb", "ahb"}) {
    auto spec = spec_from(bus, true);
    const auto* adapter = adapters::AdapterRegistry::instance().find(bus);
    DiagnosticEngine diags;
    EXPECT_TRUE(adapter->check_parameters(spec, diags))
        << bus << "\n" << diags.render();
  }
}

TEST(Interrupts, GeneratedArbiterGainsIrqPort) {
  Engine engine;
  DiagnosticEngine diags;
  auto artifacts = engine.generate(
      "%device_name irqdev\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\n%irq_support true\nint f(int x);\n",
      diags);
  ASSERT_TRUE(artifacts.has_value()) << diags.render();
  const std::string& arb = artifacts->find("user_irqdev.vhd")->content;
  EXPECT_NE(arb.find("IRQ            : out std_logic"), std::string::npos);
  EXPECT_NE(arb.find("IRQ <= '1' when CALC_DONE_VEC /= 0"),
            std::string::npos);

  // Without the directive the port is absent.
  DiagnosticEngine diags2;
  auto plain = engine.generate(
      "%device_name irqdev\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\nint f(int x);\n",
      diags2);
  EXPECT_EQ(plain->find("user_irqdev.vhd")->content.find("IRQ"),
            std::string::npos);
}

TEST(Interrupts, VerilogArbiterGainsIrqPort) {
  Engine engine;
  DiagnosticEngine diags;
  auto artifacts = engine.generate(
      "%device_name irqdev\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\n%irq_support true\n"
      "%target_hdl verilog\nint f(int x);\n",
      diags);
  ASSERT_TRUE(artifacts.has_value()) << diags.render();
  const std::string& arb = artifacts->find("user_irqdev.v")->content;
  EXPECT_NE(arb.find("output wire IRQ"), std::string::npos);
  EXPECT_NE(arb.find("assign IRQ = |CALC_DONE_VEC;"), std::string::npos);
}

TEST(Interrupts, MacroLibraryUsesIrqFlagOnStrictBus) {
  auto spec = spec_from("apb", true);
  const std::string lib = drivergen::emit_macro_library(spec);
  EXPECT_NE(lib.find("splice_irq_flag"), std::string::npos);
  EXPECT_NE(lib.find("wait-for-interrupt"), std::string::npos);
}

TEST(Interrupts, ApbCallCompletesWithoutPolling) {
  auto spec = spec_from("apb", true);
  elab::BehaviorMap b;
  b.set("f", [](const elab::CallContext& ctx) {
    return elab::CalcResult{40, {ctx.scalar(0) * 3}};
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  auto r = vp.call("f", {{5}});
  ASSERT_EQ(r.outputs.size(), 1u);
  EXPECT_EQ(r.outputs[0], 15u);
  // Exactly one taken interrupt and a single identifying status read —
  // no poll loop spinning across the 40 calculation cycles.
  EXPECT_EQ(vp.cpu().interrupts_taken(), 1u);
  EXPECT_EQ(vp.cpu().polls_performed(), 1u);
  EXPECT_TRUE(vp.checker().clean());
}

TEST(Interrupts, PollingVariantSpinsManyTimes) {
  auto spec = spec_from("apb", false);
  elab::BehaviorMap b;
  b.set("f", [](const elab::CallContext& ctx) {
    return elab::CalcResult{40, {ctx.scalar(0) * 3}};
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  auto r = vp.call("f", {{5}});
  EXPECT_EQ(r.outputs.at(0), 15u);
  EXPECT_EQ(vp.cpu().interrupts_taken(), 0u);
  EXPECT_GT(vp.cpu().polls_performed(), 1u);
}

TEST(Interrupts, IrqSavesBusTrafficForLongCalculations) {
  auto run = [](bool irq) {
    auto spec = spec_from("apb", irq);
    elab::BehaviorMap b;
    b.set("f", [](const elab::CallContext& ctx) {
      return elab::CalcResult{200, {ctx.scalar(0)}};
    });
    runtime::VirtualPlatform vp(std::move(spec), b);
    (void)vp.call("f", {{1}});
    auto r = vp.call("f", {{1}});
    return r.bus_cycles;
  };
  // Interrupt-driven completion should not be slower, and the bus is idle
  // during the calculation instead of carrying poll reads.
  EXPECT_LE(run(true), run(false) + bus::timing::kIsrEntryCycles);
}

// ---------------------------------------------------------------------------
// Interrupt-driven completion of nowait calls: the device latches
// CALC_DONE, raises IRQ, and the driver's wait-for-completion program
// sleeps on the line instead of spinning on the status register.

elab::BehaviorMap nowait_behavior(unsigned cycles) {
  elab::BehaviorMap b;
  b.set("f", [cycles](const elab::CallContext& ctx) {
    return elab::CalcResult{cycles, {ctx.scalar(0)}};
  });
  return b;
}

TEST(Interrupts, NowaitIrqCompletionOnEveryIrqBus) {
  for (const char* bus : {"plb", "apb", "ahb"}) {
    SCOPED_TRACE(bus);
    auto spec = spec_from(bus, true, "nowait f(int x);\n");
    runtime::VirtualPlatform vp(std::move(spec), nowait_behavior(60));
    vp.call("f", {{5}});  // returns before the calculation finishes
    const auto wait = vp.wait_completion("f", 0, /*irq=*/true);
    EXPECT_GT(wait.bus_cycles, 0u);
    EXPECT_EQ(vp.cpu().interrupts_taken(), 1u);
    // One identifying status read, no spin across the 60 calc cycles.
    EXPECT_EQ(vp.cpu().polls_performed(), 1u);
    EXPECT_TRUE(vp.checker().clean())
        << bus << ": " << vp.checker().violations().front();
    // The completion ack cleared the CALC_DONE latch: line back down.
    vp.sim().step(8);
    EXPECT_FALSE(vp.sim().find_signal("IRQ")->high());
  }
}

TEST(Interrupts, NowaitPolledCompletionSpins) {
  auto spec = spec_from("plb", false, "nowait f(int x);\n");
  runtime::VirtualPlatform vp(std::move(spec), nowait_behavior(120));
  vp.call("f", {{5}});
  (void)vp.wait_completion("f");
  EXPECT_EQ(vp.cpu().interrupts_taken(), 0u);
  EXPECT_GT(vp.cpu().polls_performed(), 1u);
  EXPECT_TRUE(vp.checker().clean());
}

TEST(Interrupts, IrqBeforeWaitIsNotMissed) {
  auto spec = spec_from("plb", true, "nowait f(int x);\n");
  runtime::VirtualPlatform vp(std::move(spec), nowait_behavior(20));
  vp.call("f", {{5}});
  vp.sim().step(400);  // completion long before anyone waits
  ASSERT_TRUE(vp.sim().find_signal("IRQ")->high());
  const auto wait = vp.wait_completion("f", 0, /*irq=*/true);
  // The latched level is still up, so the wait returns immediately.
  EXPECT_EQ(vp.cpu().interrupts_taken(), 1u);
  EXPECT_LT(wait.bus_cycles, 200u);
  vp.sim().step(8);
  EXPECT_FALSE(vp.sim().find_signal("IRQ")->high());
  EXPECT_TRUE(vp.checker().clean());
}

TEST(Interrupts, ForeignLatchIrqFallsBackToPolling) {
  // Two nowait calculations in flight; the fast one raises the line first.
  // Waiting on the SLOW one takes the early interrupt, finds its own bit
  // clear, sees the line still held high by the other latch, and must fall
  // back to polling rather than re-arming the sleep (livelock guard).
  auto spec = spec_from("plb", true, "nowait f(int x);\nnowait g(int x);\n");
  elab::BehaviorMap b;
  b.set("f", [](const elab::CallContext& ctx) {
    return elab::CalcResult{10, {ctx.scalar(0)}};
  });
  b.set("g", [](const elab::CallContext& ctx) {
    return elab::CalcResult{400, {ctx.scalar(0)}};
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  vp.call("f", {{1}});
  vp.call("g", {{2}});
  (void)vp.wait_completion("g", 0, /*irq=*/true);
  EXPECT_EQ(vp.cpu().interrupts_taken(), 1u);
  EXPECT_GT(vp.cpu().polls_performed(), 1u);  // the fallback spin
  // f's latch is still pending; its own wait completes and drops the line.
  (void)vp.wait_completion("f", 0, /*irq=*/true);
  vp.sim().step(8);
  EXPECT_FALSE(vp.sim().find_signal("IRQ")->high());
  EXPECT_TRUE(vp.checker().clean())
      << vp.checker().violations().front();
}

TEST(Interrupts, WaitCompletionRejectsBlockingFunctions) {
  auto spec = spec_from("plb", true);  // blocking f
  runtime::VirtualPlatform vp(std::move(spec), nowait_behavior(4));
  EXPECT_THROW((void)vp.wait_completion("f"), SpliceError);
}

TEST(Interrupts, RepeatedCallsStayConsistent) {
  auto spec = spec_from("plb", true);
  elab::BehaviorMap b;
  b.set("f", [](const elab::CallContext& ctx) {
    return elab::CalcResult{10, {ctx.scalar(0) + 1}};
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  for (std::uint64_t k = 0; k < 4; ++k) {
    EXPECT_EQ(vp.call("f", {{k}}).outputs.at(0), k + 1);
  }
  EXPECT_TRUE(vp.checker().clean());
}

}  // namespace
