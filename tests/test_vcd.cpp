// VCD writer edge cases: empty watch lists, designs wide enough to need
// multi-character identifier codes, and initial values at time 0 — the
// $dumpvars section must dump every watched signal unconditionally, or a
// value equal to the writer's internal "unseen" state would be suppressed
// and viewers would render never-changing signals as 'x' forever.
#include <gtest/gtest.h>

#include <string>

#include "rtl/simulator.hpp"
#include "rtl/trace.hpp"
#include "rtl/vcd.hpp"

namespace {

using namespace splice::rtl;

// A no-op module so the simulator has something to clock.
class Idle : public Module {
 public:
  Idle() : Module("idle") {
    watch_none();
    clocked_none();
  }
};

TEST(Vcd, ZeroSignalModuleEmitsHeaderOnly) {
  Simulator sim;
  sim.add<Idle>();
  Trace trace(sim);  // nothing watched
  sim.step(3);
  const std::string vcd = to_vcd(trace, sim, "empty");
  EXPECT_NE(vcd.find("$scope module empty $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_EQ(vcd.find("$var"), std::string::npos);
  // With no channels there are no recorded cycles; the end-of-trace
  // timestamp still closes the (empty) waveform.
  EXPECT_NE(vcd.find("#0"), std::string::npos);
}

TEST(Vcd, MoreThan94SignalsGetMultiCharIdCodes) {
  Simulator sim;
  sim.add<Idle>();
  Trace trace(sim);
  for (int i = 0; i < 100; ++i) {
    Signal& s = sim.signal("sig" + std::to_string(i), 8);
    s.drive(static_cast<std::uint64_t>(i));
    trace.watch(s);
  }
  sim.step(2);
  const std::string vcd = to_vcd(trace, sim, "wide");
  // Signal 0 gets "!", signal 94 wraps to the two-character code "!\"".
  EXPECT_NE(vcd.find("$var wire 8 ! sig0 $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 8 !\" sig94 $end"), std::string::npos);
  // Every signal's initial value appears in the $dumpvars section with its
  // (possibly multi-char) code.
  EXPECT_NE(vcd.find("b01011110 !\""), std::string::npos);  // sig94 == 94
}

TEST(Vcd, InitialValuesDumpedAtTimeZero) {
  Simulator sim;
  sim.add<Idle>();
  Signal& never = sim.signal("never_changes", 8);
  never.drive(std::uint64_t{0x42});
  Signal& zero = sim.signal("zero", 1);
  Trace trace(sim);
  trace.watch(never);
  trace.watch(zero);
  sim.step(3);
  const std::string vcd = to_vcd(trace, sim, "top");
  const std::size_t dump = vcd.find("$dumpvars");
  ASSERT_NE(dump, std::string::npos);
  const std::size_t end = vcd.find("$end", dump);
  const std::string initial = vcd.substr(dump, end - dump);
  // Both signals appear in the initial dump even though neither ever
  // changes — including the one whose value is 0.
  EXPECT_NE(initial.find("b01000010 !"), std::string::npos);
  EXPECT_NE(initial.find("0\""), std::string::npos);
}

TEST(Vcd, AllOnes64BitValueAtTimeZeroIsNotSuppressed) {
  Simulator sim;
  sim.add<Idle>();
  Signal& wide = sim.signal("wide", 64);
  wide.drive(~std::uint64_t{0});
  Trace trace(sim);
  trace.watch(wide);
  sim.step(2);
  const std::string vcd = to_vcd(trace, sim, "top");
  // 64 ones, dumped at time 0 despite matching any internal sentinel.
  EXPECT_NE(vcd.find("b" + std::string(64, '1') + " !"), std::string::npos);
}

TEST(Vcd, ChangeAtTimeZeroThenTogglesRecordedOnce) {
  Simulator sim;
  Signal& s = sim.signal("s", 1);
  s.drive(std::uint64_t{1});
  sim.add<Idle>();
  Trace trace(sim);
  trace.watch(s);
  sim.step();      // cycle 0 sampled high
  s.drive(std::uint64_t{0});
  sim.step();      // cycle 1 sampled low
  sim.step();      // cycle 2 unchanged
  const std::string vcd = to_vcd(trace, sim, "top");
  // High at #0 (inside $dumpvars), one change to low at #1, nothing at #2.
  const std::size_t t0 = vcd.find("#0");
  const std::size_t t1 = vcd.find("#1");
  ASSERT_NE(t0, std::string::npos);
  ASSERT_NE(t1, std::string::npos);
  EXPECT_NE(vcd.find("1!", t0), std::string::npos);
  EXPECT_NE(vcd.find("0!", t1), std::string::npos);
  EXPECT_EQ(vcd.find("#2"), std::string::npos);  // no change, no timestamp
  EXPECT_NE(vcd.find("#3"), std::string::npos);  // end-of-trace marker
}

}  // namespace
