// The multi-window PLB decode and the PLB->OPB bridge: address-window
// routing, request forwarding with the full crossing latency, the
// timeout watchdog, back-pressure while a forward is in flight, the
// registered interrupt crossing, and the deliberately-broken bridge
// variants proving the cross-device checker axioms fire.
#include <gtest/gtest.h>

#include "bus/bridge.hpp"
#include "bus/opb.hpp"
#include "bus/plb.hpp"
#include "bus/timing.hpp"
#include "runtime/soc.hpp"
#include "support/diagnostics.hpp"

namespace {

using namespace splice;
using namespace splice::bus;

/// Minimal always-ready window slave: acknowledges every request on the
/// next cycle and echoes written data back on reads (per-window copy of
/// the test_bus_models helper).
class EchoSlave : public rtl::Module {
 public:
  explicit EchoSlave(PlbPins& pins)
      : rtl::Module("echo_slave"), pins_(pins) {}
  void clock_edge() override {
    pins_.wr_ack.set(false);
    pins_.rd_ack.set(false);
    if (pins_.wr_req.high() && pins_.wr_ce.get() != 0) {
      last_written = pins_.wr_data.get();
      last_wr_slot = pins_.wr_ce.get();
      ++writes;
      pins_.wr_ack.set(true);
    }
    if (pins_.rd_req.high() && pins_.rd_ce.get() != 0) {
      pins_.rd_data.set(last_written);
      pins_.rd_ack.set(true);
      ++reads;
    }
  }
  PlbPins& pins_;
  std::uint64_t last_written = 0;
  std::uint64_t last_wr_slot = 0;
  unsigned writes = 0;
  unsigned reads = 0;
};

std::uint64_t run_until_idle(rtl::Simulator& sim, MasterPort& port) {
  const std::uint64_t start = sim.cycle();
  EXPECT_TRUE(sim.step_until([&] { return !port.busy(); }, 50'000));
  return sim.cycle() - start;
}

// ---------------------------------------------------------------------------
// Multi-window decode on one shared bus.

TEST(PlbWindows, GlobalFidRoutesToWindowWithLocalOneHot) {
  rtl::Simulator sim;
  auto& plb = sim.add<PlbBus>(sim, "PLB_", 32, 4);
  const std::uint32_t w1 = plb.add_window("PLB_W1_", 6);
  ASSERT_EQ(w1, 4u);
  ASSERT_EQ(plb.window_count(), 2u);
  EXPECT_EQ(plb.fid_limit(), 10u);
  auto& s0 = sim.add<EchoSlave>(plb.window(0));
  auto& s1 = sim.add<EchoSlave>(plb.window(1));

  plb.write(2, {0x11});  // window 0, local slot 2
  run_until_idle(sim, plb);
  plb.write(w1 + 5, {0x22});  // window 1, local slot 5
  run_until_idle(sim, plb);

  EXPECT_EQ(s0.writes, 1u);
  EXPECT_EQ(s0.last_wr_slot, 1u << 2);
  EXPECT_EQ(s1.writes, 1u);
  EXPECT_EQ(s1.last_wr_slot, 1u << 5);
  EXPECT_EQ(s1.last_written, 0x22u);
}

TEST(PlbWindows, OutOfRangeFidRejected) {
  rtl::Simulator sim;
  auto& plb = sim.add<PlbBus>(sim, "PLB_", 32, 4);
  plb.add_window("PLB_W1_", 4);
  // The decode happens when the queued operation reaches the pins.
  plb.write(8, {1});
  EXPECT_THROW(sim.step(16), SpliceError);
}

// ---------------------------------------------------------------------------
// Bridge forwarding.

struct BridgedFixture {
  rtl::Simulator sim;
  PlbBus* plb = nullptr;
  OpbBus* opb = nullptr;
  PlbOpbBridge* bridge = nullptr;
  EchoSlave* opb_slave = nullptr;
  std::uint32_t bridge_base = 0;

  explicit BridgedFixture(unsigned timeout = timing::kBridgeTimeoutCycles,
                          bool populate_opb = true) {
    plb = &sim.add<PlbBus>(sim, "PLB_", 32, 4);
    opb = &sim.add<OpbBus>(sim, "OPB_", 32, 8);
    bridge_base = plb->add_window("BRG_", opb->fid_limit());
    bridge = &sim.add<PlbOpbBridge>(plb->window(1), *opb, timeout);
    if (populate_opb) opb_slave = &sim.add<EchoSlave>(opb->pins());
  }
};

TEST(Bridge, ForwardsWriteAndReadAcrossSegments) {
  BridgedFixture f;
  f.plb->write(f.bridge_base + 3, {0xBEEF});
  run_until_idle(f.sim, *f.plb);
  EXPECT_EQ(f.opb_slave->writes, 1u);
  EXPECT_EQ(f.opb_slave->last_wr_slot, 1u << 3);
  EXPECT_EQ(f.opb_slave->last_written, 0xBEEFu);

  f.plb->read(f.bridge_base + 3, 1);
  run_until_idle(f.sim, *f.plb);
  ASSERT_EQ(f.plb->read_data().size(), 1u);
  EXPECT_EQ(f.plb->read_data()[0], 0xBEEFu);
  EXPECT_EQ(f.bridge->grants(), 2u);
  EXPECT_EQ(f.bridge->timeouts(), 0u);
}

TEST(Bridge, CrossingCostsMoreThanNativeAccess) {
  BridgedFixture f;
  f.sim.add<EchoSlave>(f.plb->window(0));
  f.plb->write(1, {0x1});
  const std::uint64_t native = run_until_idle(f.sim, *f.plb);
  f.plb->write(f.bridge_base + 1, {0x2});
  const std::uint64_t bridged = run_until_idle(f.sim, *f.plb);
  // The crossing pays the bridge latch plus the whole OPB operation
  // (which itself carries the OPB bridge penalty cycles).
  EXPECT_GT(bridged, native + timing::kOpbBridgeCycles);
}

TEST(Bridge, RootWindowStillDecodesLocally) {
  BridgedFixture f;
  auto& root_slave = f.sim.add<EchoSlave>(f.plb->window(0));
  f.plb->write(1, {0x77});
  run_until_idle(f.sim, *f.plb);
  EXPECT_EQ(root_slave.writes, 1u);
  EXPECT_EQ(f.bridge->grants(), 0u);  // native traffic never crosses
}

TEST(Bridge, WatchdogErrorCompletesUnansweredRequest) {
  BridgedFixture f(/*timeout=*/32, /*populate_opb=*/false);
  f.plb->read(f.bridge_base + 2, 1);
  run_until_idle(f.sim, *f.plb);
  EXPECT_EQ(f.bridge->timeouts(), 1u);
  ASSERT_EQ(f.plb->read_data().size(), 1u);
  EXPECT_EQ(f.plb->read_data()[0], 0xFFFFFFFFu);  // all-ones error word
}

/// Slave that latches the request strobe and acknowledges `delay` cycles
/// later — slower than the bridge watchdog when so configured.
class SlowSlave : public rtl::Module {
 public:
  SlowSlave(PlbPins& pins, unsigned delay)
      : rtl::Module("slow_slave"), pins_(pins), delay_(delay) {}
  void clock_edge() override {
    pins_.wr_ack.set(false);
    pins_.rd_ack.set(false);
    if (pins_.wr_req.high() || pins_.rd_req.high()) {
      pending_ = true;
      read_ = pins_.rd_req.high();
      countdown_ = delay_;
    }
    if (pending_ && countdown_ > 0 && --countdown_ == 0) {
      pending_ = false;
      if (read_) {
        pins_.rd_data.set(std::uint64_t{0xA5});
        pins_.rd_ack.set(true);
      } else {
        pins_.wr_ack.set(true);
      }
      ++completions;
    }
  }
  PlbPins& pins_;
  unsigned delay_;
  bool pending_ = false;
  bool read_ = false;
  unsigned countdown_ = 0;
  unsigned completions = 0;
};

TEST(Bridge, LateCompletionDiscardedThenRecovers) {
  // The sub-segment answers, but slower than the watchdog: the first
  // crossing error-completes upstream, the late downstream acknowledge is
  // discarded, and the NEXT crossing completes normally.
  BridgedFixture f(/*timeout=*/24, /*populate_opb=*/false);
  auto& slave = f.sim.add<SlowSlave>(f.opb->pins(), 64);
  f.plb->read(f.bridge_base + 2, 1);
  run_until_idle(f.sim, *f.plb);
  ASSERT_EQ(f.bridge->timeouts(), 1u);
  EXPECT_EQ(f.plb->read_data().at(0), 0xFFFFFFFFu);

  f.sim.step(128);  // the abandoned operation drains downstream
  EXPECT_EQ(slave.completions, 1u);

  slave.delay_ = 4;  // the slave speeds up; crossings fit the watchdog now
  f.plb->read(f.bridge_base + 2, 1);
  run_until_idle(f.sim, *f.plb);
  EXPECT_EQ(f.bridge->timeouts(), 1u);  // no further timeouts
  EXPECT_EQ(f.plb->read_data().at(0), 0xA5u);
}

TEST(Bridge, UnmappedSlaveNeverHangsTheRootBus) {
  // A truly unmapped sub-segment slave wedges the OPB, but every upstream
  // crossing still error-completes instead of stalling the root segment.
  BridgedFixture f(/*timeout=*/24, /*populate_opb=*/false);
  auto& root_slave = f.sim.add<EchoSlave>(f.plb->window(0));
  f.plb->read(f.bridge_base + 2, 1);
  run_until_idle(f.sim, *f.plb);
  EXPECT_EQ(f.bridge->timeouts(), 1u);
  f.plb->read(f.bridge_base + 1, 1);
  run_until_idle(f.sim, *f.plb);
  EXPECT_EQ(f.bridge->timeouts(), 2u);
  // Native window traffic is unaffected throughout.
  f.plb->write(1, {0x33});
  run_until_idle(f.sim, *f.plb);
  EXPECT_EQ(root_slave.writes, 1u);
}

TEST(Bridge, BackToBackCrossingsSerialize) {
  BridgedFixture f;
  // The upstream bus queues word ops itself, so two writes enqueued at
  // once must both cross, one forwarded operation at a time.
  f.plb->write(f.bridge_base + 1, {0x10, 0x20, 0x30});
  run_until_idle(f.sim, *f.plb);
  EXPECT_EQ(f.opb_slave->writes, 3u);
  EXPECT_EQ(f.bridge->grants(), 3u);
  EXPECT_EQ(f.opb_slave->last_written, 0x30u);
}

// ---------------------------------------------------------------------------
// Interrupt crossing.

TEST(Bridge, RoutedIrqCrossesWithRegisterLatency) {
  BridgedFixture f;
  rtl::Signal& src = f.sim.signal("SUB_IRQ", 1);
  rtl::Signal& dst = f.sim.signal("TOP_IRQ", 1);
  f.bridge->route_irq(src, dst);
  f.sim.step(4);
  EXPECT_FALSE(dst.high());
  src.set(true);
  f.sim.step(3);  // >= one bridge register of latency
  EXPECT_TRUE(dst.high());
  src.set(false);
  f.sim.step(3);
  EXPECT_FALSE(dst.high());
}

}  // namespace
