// Property-style platform sweeps: pseudo-random interface declarations
// and argument sets executed over every bus, asserting bit-exact data
// delivery and a clean SIS protocol trace — the "any declaration, any
// interconnect" portability promise of the thesis.
#include <gtest/gtest.h>

#include <tuple>

#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "runtime/platform.hpp"
#include "support/bits.hpp"

namespace {

using namespace splice;

struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed * 0x9E3779B97F4A7C15ull + 1) {}
  std::uint64_t next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
};

// A generated declaration paired with a way to build its arguments.
struct GeneratedDecl {
  std::string text;        // the declaration
  std::vector<unsigned> element_counts;  // per param
  std::vector<unsigned> element_bits;
};

GeneratedDecl random_decl(Rng& rng) {
  // Parameter shapes: scalar int, scalar char, explicit array, packed
  // array, implicit (count + array), 64-bit user-type scalar.
  GeneratedDecl d;
  d.text = "int fn(";
  const unsigned nparams = 1 + static_cast<unsigned>(rng.below(3));
  bool first = true;
  for (unsigned p = 0; p < nparams; ++p) {
    if (!first) d.text += ", ";
    first = false;
    const std::string name = "p" + std::to_string(p);
    switch (rng.below(5)) {
      case 0:
        d.text += "int " + name;
        d.element_counts.push_back(1);
        d.element_bits.push_back(32);
        break;
      case 1:
        d.text += "char " + name;
        d.element_counts.push_back(1);
        d.element_bits.push_back(8);
        break;
      case 2: {
        const unsigned n = 1 + static_cast<unsigned>(rng.below(6));
        d.text += "int*:" + std::to_string(n) + " " + name;
        d.element_counts.push_back(n);
        d.element_bits.push_back(32);
        break;
      }
      case 3: {
        const unsigned n = 2 + static_cast<unsigned>(rng.below(9));
        d.text += "char*:" + std::to_string(n) + "+ " + name;
        d.element_counts.push_back(n);
        d.element_bits.push_back(8);
        break;
      }
      case 4: {
        // implicit: a count then the array
        const unsigned n = 1 + static_cast<unsigned>(rng.below(5));
        d.text += "char " + name + "n, int*:" + name + "n " + name;
        d.element_counts.push_back(1);   // the count itself
        d.element_bits.push_back(8);
        d.element_counts.push_back(n);
        d.element_bits.push_back(32);
        break;
      }
    }
  }
  d.text += ");\n";
  return d;
}

using Param = std::tuple<const char*, unsigned>;  // bus, seed

class PlatformProperty : public ::testing::TestWithParam<Param> {};

TEST_P(PlatformProperty, RandomDeclarationDeliversAllData) {
  const auto [bus, seed] = GetParam();
  Rng rng(seed);
  const GeneratedDecl decl = random_decl(rng);

  const bool mapped = std::string(bus) != "fcb";
  std::string text = std::string("%device_name prop\n%bus_type ") + bus +
                     "\n%bus_width 32\n" +
                     (mapped ? "%base_address 0x80000000\n" : "") +
                     decl.text;
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  ASSERT_TRUE(spec.has_value()) << decl.text << diags.render();
  ASSERT_TRUE(ir::validate(*spec, diags)) << decl.text << diags.render();

  // Build arguments: implicit counts must equal the chosen array sizes,
  // so walk the params as declared.
  const auto& fn = spec->functions[0];
  drivergen::CallArgs args;
  std::size_t shape_idx = 0;
  std::uint64_t checksum = 0;
  for (const auto& p : fn.inputs) {
    unsigned count = decl.element_counts[shape_idx];
    if (p.used_as_index) {
      // This is a count parameter: its value is the next param's size.
      count = 1;
      args.push_back({decl.element_counts[shape_idx + 1]});
      checksum += decl.element_counts[shape_idx + 1];
      ++shape_idx;
      continue;
    }
    std::vector<std::uint64_t> vals;
    for (unsigned e = 0; e < count; ++e) {
      const std::uint64_t v =
          rng.next() & bits::low_mask(decl.element_bits[shape_idx]);
      vals.push_back(v);
      checksum += v;
    }
    args.push_back(std::move(vals));
    ++shape_idx;
  }

  // The device sums every element of every parameter: if any word is
  // dropped, duplicated or reordered into the wrong lane, the checksum
  // breaks.
  elab::BehaviorMap behaviors;
  behaviors.set("fn", [](const elab::CallContext& ctx) {
    std::uint64_t sum = 0;
    for (const auto& param : ctx.inputs) {
      for (std::uint64_t v : param) sum += v;
    }
    return elab::CalcResult{3, {sum}};
  });

  runtime::VirtualPlatform vp(std::move(*spec), behaviors);
  for (int repeat = 0; repeat < 3; ++repeat) {
    auto r = vp.call("fn", args);
    ASSERT_EQ(r.outputs.size(), 1u) << decl.text;
    EXPECT_EQ(r.outputs[0], checksum & 0xFFFFFFFFull)
        << decl.text << " on " << bus;
  }
  EXPECT_TRUE(vp.checker().clean())
      << decl.text << "\n"
      << ::testing::PrintToString(vp.checker().violations());
}

std::vector<Param> sweep() {
  std::vector<Param> out;
  for (const char* bus : {"plb", "opb", "fcb", "apb", "ahb"}) {
    for (unsigned seed = 1; seed <= 8; ++seed) out.push_back({bus, seed});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlatformProperty, ::testing::ValuesIn(sweep()),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
