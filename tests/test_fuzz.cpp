// Property-based fuzzer tests: the generator's validity guarantee, the
// structural-equivalence differ, the greedy shrinker, and the fixed-seed
// conformance campaign that gates every commit (ISSUE: ≥200 specs, zero
// oracle violations).
#include <gtest/gtest.h>

#include "codegen/hdl_builder.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "support/telemetry.hpp"
#include "testing/conformance.hpp"
#include "testing/equiv.hpp"
#include "testing/fuzz.hpp"
#include "testing/shrink.hpp"
#include "testing/spec_gen.hpp"

namespace {

using namespace splice;
using namespace splice::testing;

/// Renders the model and pushes it through the real frontend + validator.
bool model_is_valid(const SpecModel& model) {
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(model.render(), diags);
  if (!spec.has_value()) return false;
  return ir::validate(*spec, diags);
}

// --- generator --------------------------------------------------------------

TEST(SpecGen, GeneratedSpecsAreValidByConstruction) {
  // The generator's core property (§3.3): every spec it emits parses and
  // validates.  Sweep enough seeds that every feature combination in the
  // weight table appears at least once.
  for (std::uint64_t seed = 0; seed < 80; ++seed) {
    SpecModel m = generate_spec(splitmix64(seed));
    EXPECT_TRUE(model_is_valid(m)) << "seed " << seed << ":\n" << m.render();
  }
}

TEST(SpecGen, DeterministicInSeed) {
  GenOptions opt;
  EXPECT_EQ(generate_spec(42, opt).render(), generate_spec(42, opt).render());
  EXPECT_NE(generate_spec(42, opt).render(), generate_spec(43, opt).render());
}

TEST(SpecGen, NowaitDeclarationsAlwaysHaveInputs) {
  // Regression: a zero-input nowait can never be enacted and is now a
  // validation error — the generator must never produce one.
  GenOptions opt;
  opt.pct_nowait = 100;  // force the non-blocking path
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    SpecModel m = generate_spec(splitmix64(0xA0 + seed), opt);
    for (const auto& fn : m.functions) {
      if (fn.ret == FunctionModel::Ret::Nowait) {
        EXPECT_FALSE(fn.inputs.empty()) << m.render();
      }
    }
  }
}

// --- structural equivalence differ -----------------------------------------

ir::DeviceSpec parse_valid(const std::string& text) {
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  EXPECT_TRUE(spec.has_value()) << diags.render();
  EXPECT_TRUE(ir::validate(*spec, diags)) << diags.render();
  return std::move(*spec);
}

TEST(StructuralDiff, IdenticalDialectsAreEquivalent) {
  auto spec = parse_valid(
      "%device_name eqdev\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\n"
      "int scale(int x, char*:4+ ys);\n");
  auto vhdl = codegen::build_stub_ast(spec.functions[0], spec,
                                      codegen::ast::Dialect::Vhdl);
  auto vlog = codegen::build_stub_ast(spec.functions[0], spec,
                                      codegen::ast::Dialect::Verilog);
  EXPECT_TRUE(structural_diff(vhdl, vlog).empty())
      << ::testing::PrintToString(structural_diff(vhdl, vlog));
}

TEST(StructuralDiff, DetectsSeededDivergence) {
  auto spec = parse_valid(
      "%device_name eqdev\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\n"
      "int scale(int x, char*:4+ ys);\n");
  auto a = codegen::build_stub_ast(spec.functions[0], spec,
                                   codegen::ast::Dialect::Vhdl);

  // A port-width mutation (the classic cross-dialect slip).
  auto b = a;
  ASSERT_FALSE(b.ports.empty());
  b.ports.front().width += 7;
  EXPECT_FALSE(structural_diff(a, b).empty());

  // A lost register.
  auto c = a;
  ASSERT_FALSE(c.signals.empty());
  c.signals.pop_back();
  EXPECT_FALSE(structural_diff(a, c).empty());

  // A diverged FSM.
  auto d = a;
  ASSERT_TRUE(d.fsm.has_value());
  d.fsm->states.push_back("PHANTOM");
  EXPECT_FALSE(structural_diff(a, d).empty());
}

// --- shrinker ---------------------------------------------------------------

TEST(Shrink, MinimizesToThePredicateCore) {
  // Build a deliberately fat spec and shrink against an artificial
  // predicate: "still valid and still contains a packed parameter".  The
  // fixpoint must be a single declaration with a single packed input.
  SpecModel m;
  m.device_name = "shrinkme";
  m.bus_type = "plb";
  m.bus_width = 32;
  m.base_address = 0x80000000;

  FunctionModel f0;
  f0.name = "fn0";
  f0.ret = FunctionModel::Ret::Value;
  f0.output.type = "int";
  f0.instances = 3;
  f0.inputs.push_back({"int", "a0"});
  ParamModel packed;
  packed.type = "char";
  packed.name = "a1";
  packed.bound = ParamModel::Bound::Explicit;
  packed.count = 6;
  packed.packed = true;
  f0.inputs.push_back(packed);
  f0.inputs.push_back({"short", "a2"});
  m.functions.push_back(f0);

  FunctionModel f1;
  f1.name = "fn1";
  f1.ret = FunctionModel::Ret::Void;
  f1.inputs.push_back({"int", "b0"});
  m.functions.push_back(f1);

  ASSERT_TRUE(model_is_valid(m));

  auto has_packed = [](const SpecModel& s) {
    for (const auto& fn : s.functions) {
      for (const auto& p : fn.inputs) {
        if (p.packed) return true;
      }
    }
    return false;
  };
  ShrinkStats stats;
  SpecModel minimized = shrink(
      m,
      [&](const SpecModel& s) { return model_is_valid(s) && has_packed(s); },
      &stats);

  EXPECT_TRUE(model_is_valid(minimized));
  EXPECT_TRUE(has_packed(minimized));
  ASSERT_EQ(minimized.functions.size(), 1u);
  EXPECT_EQ(minimized.functions[0].inputs.size(), 1u);
  EXPECT_EQ(minimized.functions[0].instances, 1u);
  EXPECT_GT(stats.attempts, 0u);
  EXPECT_GT(stats.accepted, 0u);
}

// --- single-spec oracle -----------------------------------------------------

TEST(Conformance, HandWrittenSpecPassesOracle) {
  SpecModel m;
  m.device_name = "oracle_dev";
  m.bus_type = "plb";
  m.bus_width = 32;
  m.base_address = 0x80000000;
  FunctionModel fn;
  fn.name = "fn0";
  fn.ret = FunctionModel::Ret::Value;
  fn.output.type = "int";
  fn.inputs.push_back({"int", "a0"});
  m.functions.push_back(fn);

  OracleResult r = run_conformance(m);
  EXPECT_TRUE(r.ok()) << ::testing::PrintToString(r.failures);
  EXPECT_GT(r.calls, 0u);
  EXPECT_GT(r.bus_cycles, 0u);
}

TEST(Conformance, RejectedSpecIsReportedNotFailed) {
  SpecModel m;
  m.device_name = "bad_dev";
  m.bus_type = "plb";
  m.bus_width = 32;
  m.base_address = 0x80000000;
  FunctionModel fn;
  fn.name = "fn0";
  fn.ret = FunctionModel::Ret::Nowait;  // zero-input nowait: invalid
  m.functions.push_back(fn);

  OracleResult r = run_conformance(m);
  EXPECT_TRUE(r.spec_rejected);
}

// --- the commit gate --------------------------------------------------------

TEST(FuzzCampaign, FixedSeed200SpecsZeroViolations) {
  FuzzOptions opt;
  opt.seed = 1;
  opt.count = 200;
  support::telemetry::MetricsRegistry metrics;
  opt.metrics = &metrics;

  FuzzReport report = run_fuzz(opt);

  EXPECT_EQ(report.specs_run, 200u);
  EXPECT_TRUE(report.clean()) << [&] {
    std::string all;
    for (const auto& f : report.failures) {
      all += "spec " + std::to_string(f.index) + " (seed " +
             std::to_string(f.spec_seed) + "): " + f.summary + "\n" +
             f.minimized.render() + "\n";
    }
    return all;
  }();
  EXPECT_FALSE(report.time_boxed_out);
  EXPECT_EQ(metrics.counter("fuzz.specs").value(), 200u);
  EXPECT_EQ(metrics.counter("fuzz.failures").value(), 0u);
  EXPECT_GT(metrics.counter("fuzz.calls").value(), 0u);
}

}  // namespace
