// End-to-end tests of the command-line front end (tools/splice_cli.cpp):
// generation to disk, listing, printing, the bus inventory, and error
// handling.  The binary path is injected by CMake as SPLICE_CLI_PATH.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace {

namespace fs = std::filesystem;

#ifndef SPLICE_CLI_PATH
#define SPLICE_CLI_PATH "splice"
#endif

std::string cli() { return SPLICE_CLI_PATH; }

struct RunResult {
  int exit_code;
  std::string output;
};

RunResult run(const std::string& args) {
  // Unique per process: ctest runs the discovered tests concurrently.
  const fs::path out =
      fs::temp_directory_path() /
      ("splice_cli_out_" + std::to_string(::getpid()) + ".txt");
  const std::string cmd =
      cli() + " " + args + " > " + out.string() + " 2>&1";
  const int rc = std::system(cmd.c_str());
  std::ifstream in(out);
  std::ostringstream text;
  text << in.rdbuf();
  fs::remove(out);
  return {WEXITSTATUS(rc), text.str()};
}

fs::path write_spec(const std::string& name, const std::string& body) {
  const fs::path p = fs::temp_directory_path() / name;
  std::ofstream out(p);
  out << body;
  return p;
}

const char* kTimerSpec =
    "% name hw timer\n% bus type plb\n% bus width 32\n"
    "% base address 0x8000401C\n"
    "% user type llong, unsigned long long, 64\n"
    "void set_threshold{llong t};\nllong get_threshold{};\n";

TEST(Cli, GeneratesDeviceSubdirectory) {
  const fs::path spec = write_spec("cli_timer.splice", kTimerSpec);
  const fs::path dir = fs::temp_directory_path() / "splice_cli_gen";
  fs::remove_all(dir);
  auto r = run(spec.string() + " -o " + dir.string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("7 files"), std::string::npos) << r.output;
  EXPECT_TRUE(fs::exists(dir / "hw_timer" / "plb_interface.vhd"));
  EXPECT_TRUE(fs::exists(dir / "hw_timer" / "splice_lib.h"));
  fs::remove_all(dir);
  fs::remove(spec);
}

TEST(Cli, ListPrintsFilenamesOnly) {
  const fs::path spec = write_spec("cli_list.splice", kTimerSpec);
  auto r = run(spec.string() + " --list");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("user_hw_timer.vhd"), std::string::npos);
  EXPECT_NE(r.output.find("hw_timer_driver.c"), std::string::npos);
  EXPECT_EQ(r.output.find("entity"), std::string::npos)
      << "--list must not dump file contents";
  fs::remove(spec);
}

TEST(Cli, PrintDumpsContents) {
  const fs::path spec = write_spec("cli_print.splice", kTimerSpec);
  auto r = run(spec.string() + " --print");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("entity plb_interface"), std::string::npos);
  EXPECT_NE(r.output.find("#define WRITE_SINGLE"), std::string::npos);
  fs::remove(spec);
}

TEST(Cli, BusesListsTheRegistry) {
  auto r = run("--buses");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* lib :
       {"libplb_interface.so", "libopb_interface.so", "libfcb_interface.so",
        "libapb_interface.so", "libahb_interface.so"}) {
    EXPECT_NE(r.output.find(lib), std::string::npos) << lib;
  }
}

TEST(Cli, BadSpecFailsWithDiagnostics) {
  const fs::path spec = write_spec(
      "cli_bad.splice",
      "%device_name d\n%bus_type plb\n%bus_width 32\nint f();\n");
  auto r = run(spec.string() + " --list");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("base_address"), std::string::npos) << r.output;
  fs::remove(spec);
}

TEST(Cli, MissingFileAndBadOptionsReportUsage) {
  EXPECT_EQ(run("/nonexistent/nope.splice").exit_code, 2);
  EXPECT_EQ(run("--frobnicate").exit_code, 2);
  EXPECT_EQ(run("").exit_code, 2);
  EXPECT_EQ(run("--help").exit_code, 0);
}

TEST(Cli, OutputFlagWithoutDirectoryIsRejected) {
  const fs::path spec = write_spec("cli_o_missing.splice", kTimerSpec);
  auto r = run(spec.string() + " -o");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("-o needs a directory"), std::string::npos)
      << r.output;
  fs::remove(spec);
}

TEST(Cli, SimStatsRejectsOverflowingCycleCount) {
  const fs::path spec = write_spec("cli_sim_ovf.splice", kTimerSpec);
  auto r = run(spec.string() + " --sim-stats 9999999999999999999999");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("out of range"), std::string::npos) << r.output;
  fs::remove(spec);
}

TEST(Cli, SimStatsRejectsTrailingJunk) {
  const fs::path spec = write_spec("cli_sim_junk.splice", kTimerSpec);
  auto r = run(spec.string() + " --sim-stats 12abc");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("cycle count"), std::string::npos) << r.output;
  fs::remove(spec);
}

TEST(Cli, SimStatsAcceptsValidCycleCount) {
  const fs::path spec = write_spec("cli_sim_ok.splice", kTimerSpec);
  auto r = run(spec.string() + " --sim-stats 50");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  fs::remove(spec);
}

TEST(Cli, LintModeReportsCleanAndWritesNothing) {
  for (const std::string bus : {"plb", "opb", "fcb", "apb", "ahb"}) {
    const bool mapped = bus != "fcb";
    const std::string text =
        "%device_name lint_" + bus + "\n%bus_type " + bus +
        "\n%bus_width 32\n" +
        (mapped ? "%base_address 0x80000000\n" : "") +
        "int scale(int x, int factor):2;\nvoid fill(char*:16 buf);\n";
    const fs::path spec = write_spec("cli_lint_" + bus + ".splice", text);
    auto r = run(spec.string() + " --lint");
    EXPECT_EQ(r.exit_code, 0) << bus << ": " << r.output;
    EXPECT_NE(r.output.find("clean"), std::string::npos) << r.output;
    EXPECT_FALSE(fs::exists(fs::current_path() / ("lint_" + bus)))
        << "--lint must not write the device directory";
    fs::remove(spec);
  }
}

TEST(Cli, WriteFailureIsReportedNotFatal) {
  const fs::path spec = write_spec("cli_wrfail.splice", kTimerSpec);
  // A regular file used as a directory component makes create_directories
  // fail deterministically (the tests run as root, so permission bits
  // would not).
  const fs::path blocker =
      fs::temp_directory_path() /
      ("splice_cli_blocker_" + std::to_string(::getpid()));
  std::ofstream(blocker) << "not a directory";
  auto r = run(spec.string() + " -o " + (blocker / "sub").string());
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("cannot create output directory"),
            std::string::npos)
      << r.output;
  fs::remove(blocker);
  fs::remove(spec);
}

TEST(Cli, BatchCompilesSpecsInInputOrder) {
  const fs::path a = write_spec("cli_batch_a.splice", kTimerSpec);
  const fs::path b = write_spec(
      "cli_batch_b.splice",
      "%device_name batch_b\n%bus_type opb\n%bus_width 32\n"
      "%base_address 0x90000000\nint poke(int v);\n");
  const fs::path dir = fs::temp_directory_path() / "splice_cli_batch";
  fs::remove_all(dir);
  auto r = run(a.string() + " " + b.string() + " --jobs 4 -o " +
               dir.string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  // Per-spec reports appear in input order regardless of completion order.
  const auto pos_a = r.output.find("device 'hw_timer'");
  const auto pos_b = r.output.find("device 'batch_b'");
  ASSERT_NE(pos_a, std::string::npos) << r.output;
  ASSERT_NE(pos_b, std::string::npos) << r.output;
  EXPECT_LT(pos_a, pos_b);
  EXPECT_TRUE(fs::exists(dir / "hw_timer" / "plb_interface.vhd"));
  EXPECT_TRUE(fs::exists(dir / "batch_b" / "opb_interface.vhd"));
  fs::remove_all(dir);
  fs::remove(a);
  fs::remove(b);
}

TEST(Cli, BatchExitCodeIsWorstSpec) {
  const fs::path good = write_spec("cli_batch_good.splice", kTimerSpec);
  const fs::path bad = write_spec(
      "cli_batch_bad.splice",
      "%device_name d\n%bus_type plb\n%bus_width 32\nint f();\n");
  auto r = run(good.string() + " " + bad.string() + " --jobs 2 --list");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  // The failing spec's diagnostics are attributed under its header.
  EXPECT_NE(r.output.find("== " + bad.string() + " =="), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("base_address"), std::string::npos);
  fs::remove(good);
  fs::remove(bad);
}

TEST(Cli, BadJobsValuesAreRejected) {
  const fs::path spec = write_spec("cli_jobs_bad.splice", kTimerSpec);
  EXPECT_EQ(run(spec.string() + " --jobs 0 --list").exit_code, 2);
  EXPECT_EQ(run(spec.string() + " --jobs abc --list").exit_code, 2);
  EXPECT_EQ(run(spec.string() + " --jobs 9999 --list").exit_code, 2);
  EXPECT_EQ(run(spec.string() + " --jobs").exit_code, 2);
  fs::remove(spec);
}

TEST(Cli, CacheHitsOnSecondRunAndShowsInStats) {
  const fs::path spec = write_spec("cli_cache.splice", kTimerSpec);
  const fs::path cache_dir = fs::temp_directory_path() /
                             ("splice_cli_cache_" +
                              std::to_string(::getpid()));
  fs::remove_all(cache_dir);
  const std::string common =
      spec.string() + " --list --cache-dir " + cache_dir.string() +
      " --gen-stats";
  auto cold = run(common);
  EXPECT_EQ(cold.exit_code, 0) << cold.output;
  EXPECT_NE(cold.output.find("misses:   1"), std::string::npos)
      << cold.output;
  EXPECT_NE(cold.output.find("stores:   1"), std::string::npos);

  auto warm = run(common);
  EXPECT_EQ(warm.exit_code, 0) << warm.output;
  EXPECT_NE(warm.output.find("hits:     1"), std::string::npos)
      << warm.output;
  EXPECT_NE(warm.output.find("misses:   0"), std::string::npos);
  // The cached compile lists the same file set.
  EXPECT_NE(warm.output.find("user_hw_timer.vhd"), std::string::npos);
  fs::remove_all(cache_dir);
  fs::remove(spec);
}

TEST(Cli, NoCacheOverridesCacheDir) {
  const fs::path spec = write_spec("cli_nocache.splice", kTimerSpec);
  const fs::path cache_dir = fs::temp_directory_path() /
                             ("splice_cli_nocache_" +
                              std::to_string(::getpid()));
  fs::remove_all(cache_dir);
  auto r = run(spec.string() + " --list --cache-dir " + cache_dir.string() +
               " --no-cache --gen-stats");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("cache:      disabled"), std::string::npos)
      << r.output;
  EXPECT_FALSE(fs::exists(cache_dir));
  fs::remove(spec);
}

TEST(Cli, SingleSpecOutputHasNoBatchHeaders) {
  const fs::path spec = write_spec("cli_nohdr.splice", kTimerSpec);
  auto r = run(spec.string() + " --list");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output.find("== " + spec.string()), std::string::npos)
      << "single-spec runs keep the historical header-free output";
  fs::remove(spec);
}

TEST(Cli, LinuxFlagSwitchesTheMacroLibrary) {
  const fs::path spec = write_spec("cli_linux.splice", kTimerSpec);
  auto r = run(spec.string() + " --print --linux");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("/dev/mem"), std::string::npos);
  fs::remove(spec);
}

// ---------------------------------------------------------------------------
// Telemetry surface: --stats-format and --trace-out

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(Cli, StatsFormatRejectsUnknownValue) {
  const fs::path spec = write_spec("cli_sf_bad.splice", kTimerSpec);
  auto r = run(spec.string() + " --gen-stats --stats-format bogus --list");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("expects 'text' or 'json'"), std::string::npos)
      << r.output;
  EXPECT_EQ(run(spec.string() + " --stats-format").exit_code, 2);
  fs::remove(spec);
}

TEST(Cli, StatsFormatJsonRequiresAStatsFlag) {
  const fs::path spec = write_spec("cli_sf_nostats.splice", kTimerSpec);
  auto r = run(spec.string() + " --stats-format json --list");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("requires --gen-stats, --sim-stats or "
                          "--sim-profile"),
            std::string::npos)
      << r.output;
  // --print would interleave file dumps with the JSON object on stdout.
  auto p = run(spec.string() + " --stats-format json --gen-stats --print");
  EXPECT_EQ(p.exit_code, 2);
  fs::remove(spec);
}

TEST(Cli, JsonGenStatsReportsPerSpecNonCumulativeCacheCounters) {
  const fs::path a = write_spec("cli_json_a.splice", kTimerSpec);
  const fs::path b = write_spec(
      "cli_json_b.splice",
      "%device_name json_b\n%bus_type opb\n%bus_width 32\n"
      "%base_address 0x90000000\nint poke(int v);\n");
  const fs::path cache_dir =
      fs::temp_directory_path() /
      ("splice_cli_json_cache_" + std::to_string(::getpid()));
  const fs::path out_dir =
      fs::temp_directory_path() /
      ("splice_cli_json_out_" + std::to_string(::getpid()));
  fs::remove_all(cache_dir);
  fs::remove_all(out_dir);
  const std::string common = a.string() + " " + b.string() +
                             " --jobs 2 --gen-stats --stats-format json"
                             " --cache-dir " + cache_dir.string() + " -o " +
                             out_dir.string();

  auto cold = run(common);
  EXPECT_EQ(cold.exit_code, 0) << cold.output;
  // One JSON object on stdout, no text report lines.
  EXPECT_EQ(cold.output.find("== generation stats =="), std::string::npos);
  EXPECT_EQ(cold.output.find("files written"), std::string::npos);
  EXPECT_EQ(cold.output[0], '{') << cold.output;
  // Each spec's own cold outcome: one miss, one store, zero hits.
  EXPECT_NE(cold.output.find("\"cache\": {\"hits\": 0, \"misses\": 1, "
                             "\"stores\": 1, \"corrupt\": 0}"),
            std::string::npos)
      << cold.output;
  EXPECT_NE(cold.output.find("\"device\": \"hw_timer\""), std::string::npos);
  EXPECT_NE(cold.output.find("\"misses\": 2"), std::string::npos)
      << "shared totals should accumulate across the batch: " << cold.output;
  EXPECT_NE(cold.output.find("\"metrics\""), std::string::npos);
  EXPECT_NE(cold.output.find("gen.parse_us"), std::string::npos);

  auto warm = run(common);
  EXPECT_EQ(warm.exit_code, 0) << warm.output;
  // The fixed --gen-stats batch-mode bug: per-spec counters are the
  // spec's own delta (one hit each), never the cumulative totals.
  EXPECT_NE(warm.output.find("\"cache\": {\"hits\": 1, \"misses\": 0, "
                             "\"stores\": 0, \"corrupt\": 0}"),
            std::string::npos)
      << warm.output;
  EXPECT_EQ(warm.output.find("\"cache\": {\"hits\": 2"), std::string::npos)
      << "per-spec counters must not be cumulative: " << warm.output;
  fs::remove_all(cache_dir);
  fs::remove_all(out_dir);
  fs::remove(a);
  fs::remove(b);
}

TEST(Cli, SimStatsRendersAsJsonWhenAsked) {
  const fs::path spec = write_spec("cli_sim_json.splice", kTimerSpec);
  auto r = run(spec.string() + " --sim-stats 25 --stats-format json");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"settle_mode\""), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("\"sim.cycles\": 25"), std::string::npos)
      << r.output;
  EXPECT_EQ(r.output.find("simulation kernel stats"), std::string::npos)
      << "json mode must not print the text report";
  fs::remove(spec);
}

TEST(Cli, TextGenStatsListsPerSpecCacheLinesInBatchMode) {
  const fs::path a = write_spec("cli_pspec_a.splice", kTimerSpec);
  const fs::path b = write_spec(
      "cli_pspec_b.splice",
      "%device_name pspec_b\n%bus_type opb\n%bus_width 32\n"
      "%base_address 0x90000000\nint poke(int v);\n");
  const fs::path cache_dir =
      fs::temp_directory_path() /
      ("splice_cli_pspec_cache_" + std::to_string(::getpid()));
  fs::remove_all(cache_dir);
  auto r = run(a.string() + " " + b.string() + " --jobs 2 --list" +
               " --gen-stats --cache-dir " + cache_dir.string());
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("per-spec cache (this run):"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("misses 1, stores 1"), std::string::npos)
      << r.output;
  // The phase timing table rides along with --gen-stats.
  EXPECT_NE(r.output.find("gen.parse_us"), std::string::npos) << r.output;
  fs::remove_all(cache_dir);
  fs::remove(a);
  fs::remove(b);
}

TEST(Cli, TraceOutWritesAValidTraceWithoutChangingArtifacts) {
  const fs::path spec = write_spec("cli_trace.splice", kTimerSpec);
  const fs::path base =
      fs::temp_directory_path() /
      ("splice_cli_trace_" + std::to_string(::getpid()));
  fs::remove_all(base);
  const fs::path trace = base / "trace.json";
  fs::create_directories(base);

  auto plain = run(spec.string() + " -o " + (base / "plain").string());
  ASSERT_EQ(plain.exit_code, 0) << plain.output;
  auto traced = run(spec.string() + " -o " + (base / "traced").string() +
                    " --trace-out " + trace.string());
  ASSERT_EQ(traced.exit_code, 0) << traced.output;

  // The trace exists, is non-trivial and carries the expected structure.
  ASSERT_TRUE(fs::exists(trace));
  const std::string json = read_file(trace);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"splice.batch\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("spec:"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);

  // Determinism: tracing never changes the written artifact bytes.
  for (const auto& entry :
       fs::recursive_directory_iterator(base / "plain")) {
    if (!entry.is_regular_file()) continue;
    const fs::path rel = fs::relative(entry.path(), base / "plain");
    EXPECT_EQ(read_file(entry.path()), read_file(base / "traced" / rel))
        << rel << " differs under tracing";
  }
  fs::remove_all(base);
  fs::remove(spec);
}

TEST(Cli, TraceOutFailureIsReportedNotFatal) {
  const fs::path spec = write_spec("cli_trace_fail.splice", kTimerSpec);
  auto r = run(spec.string() + " --list --trace-out /nonexistent/dir/t.json");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("cannot write trace"), std::string::npos)
      << r.output;
  EXPECT_EQ(run(spec.string() + " --trace-out").exit_code, 2);
  fs::remove(spec);
}

}  // namespace
