// Content-addressed artifact cache: key derivation, hit/miss/corruption
// behaviour and warning replay.  The invariant that matters most — a hit
// returns byte-identical files to a fresh compile — is checked directly by
// round-tripping the engine's own output through a cache directory.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/splice.hpp"

namespace {

namespace fs = std::filesystem;

using namespace splice;

constexpr const char* kSpec =
    "%device_name cachedev\n%bus_type plb\n%bus_width 32\n"
    "%base_address 0x80000000\n"
    "void set(int v);\nint get();\n";

// fcb is not memory mapped, so %base_address draws a validation warning —
// the diagnostics-replay case.
constexpr const char* kWarnSpec =
    "%device_name warndev\n%bus_type fcb\n%bus_width 32\n"
    "%base_address 0x80000000\n"
    "int sum(char n, int*:n xs);\n";

class ArtifactCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("splice_cache_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(ArtifactCacheTest, NormalizationIsWhitespaceConservative) {
  const std::string base = "%bus_type plb\nint f();\n";
  EXPECT_EQ(ArtifactCache::normalize_spec("%bus_type plb\r\nint f();\r\n"),
            base);
  EXPECT_EQ(ArtifactCache::normalize_spec("%bus_type plb   \nint f();\t\n"),
            base);
  EXPECT_EQ(ArtifactCache::normalize_spec("%bus_type plb\nint f();\n\n\n"),
            base);
  // Content differences must survive normalization.
  EXPECT_NE(ArtifactCache::normalize_spec("%bus_type plb\nint g();\n"), base);
  // Interior indentation is content, not noise.
  EXPECT_NE(ArtifactCache::normalize_spec("  %bus_type plb\nint f();\n"),
            base);
}

TEST_F(ArtifactCacheTest, KeyTracksSpecConfigAndVersion) {
  const std::string k1 = ArtifactCache::key_for(kSpec, "os=baremetal");
  EXPECT_EQ(k1.size(), 64u);
  // Whitespace-noise variants alias...
  std::string crlf = kSpec;
  for (std::size_t p = 0; (p = crlf.find('\n', p)) != std::string::npos;
       p += 2) {
    crlf.insert(p, "\r");
  }
  EXPECT_EQ(ArtifactCache::key_for(crlf, "os=baremetal"), k1);
  // ...but any meaningful change misses: spec edit, %directive edit,
  // engine configuration edit.
  EXPECT_NE(ArtifactCache::key_for(std::string(kSpec) + "int extra();\n",
                                   "os=baremetal"),
            k1);
  EXPECT_NE(ArtifactCache::key_for(std::string(kSpec) +
                                       "%target_hdl verilog\n",
                                   "os=baremetal"),
            k1);
  EXPECT_NE(ArtifactCache::key_for(kSpec, "os=linux"), k1);
}

TEST_F(ArtifactCacheTest, HitAfterNoopRecompileIsByteIdentical) {
  ArtifactCache cache(dir_.string());
  Engine engine;

  DiagnosticEngine d1;
  auto cold = engine.generate_cached(kSpec, d1, &cache);
  ASSERT_TRUE(cold.has_value()) << d1.render();
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().stores, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  // Same spec modulo trailing whitespace — still the same key.
  DiagnosticEngine d2;
  auto warm = engine.generate_cached(std::string(kSpec) + "\n\n", d2, &cache);
  ASSERT_TRUE(warm.has_value()) << d2.render();
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  ASSERT_EQ(warm->filenames(), cold->filenames());
  for (const auto& name : cold->filenames()) {
    const auto* a = cold->find(name);
    const auto* b = warm->find(name);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->content, b->content) << name;
    EXPECT_EQ(a->purpose, b->purpose) << name;
  }
  EXPECT_EQ(warm->device_name, "cachedev");
}

TEST_F(ArtifactCacheTest, SpecEditMisses) {
  ArtifactCache cache(dir_.string());
  Engine engine;
  DiagnosticEngine d1;
  ASSERT_TRUE(engine.generate_cached(kSpec, d1, &cache).has_value());

  DiagnosticEngine d2;
  std::string edited = kSpec;
  edited += "int extra();\n";
  ASSERT_TRUE(engine.generate_cached(edited, d2, &cache).has_value());
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().stores, 2u);
}

TEST_F(ArtifactCacheTest, TargetDirectiveEditMisses) {
  ArtifactCache cache(dir_.string());
  Engine engine;
  DiagnosticEngine d1;
  ASSERT_TRUE(engine.generate_cached(kSpec, d1, &cache).has_value());

  DiagnosticEngine d2;
  std::string verilog = kSpec;
  verilog += "%target_hdl verilog\n";
  auto out = engine.generate_cached(verilog, d2, &cache);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
  ASSERT_NE(out->find("user_cachedev.v"), nullptr);
}

TEST_F(ArtifactCacheTest, DriverOsChangeMisses) {
  ArtifactCache cache(dir_.string());
  DiagnosticEngine d1, d2;
  Engine baremetal;
  EngineOptions linux_opts;
  linux_opts.driver_os = drivergen::DriverOs::Linux;
  Engine linux_engine(adapters::AdapterRegistry::instance(), linux_opts);

  ASSERT_TRUE(baremetal.generate_cached(kSpec, d1, &cache).has_value());
  ASSERT_TRUE(linux_engine.generate_cached(kSpec, d2, &cache).has_value());
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

// The single blob file of the only stored entry.
fs::path find_entry_blob(const fs::path& cache_dir) {
  for (const auto& entry : fs::recursive_directory_iterator(cache_dir)) {
    if (entry.is_regular_file() &&
        entry.path().filename().string().size() == 64) {
      return entry.path();
    }
  }
  return {};
}

TEST_F(ArtifactCacheTest, CorruptPayloadIsDroppedAndRegenerated) {
  ArtifactCache cache(dir_.string());
  Engine engine;
  DiagnosticEngine d1;
  auto cold = engine.generate_cached(kSpec, d1, &cache);
  ASSERT_TRUE(cold.has_value());

  // Flip one byte in the payload region (the blob's tail).
  const fs::path blob = find_entry_blob(dir_);
  ASSERT_FALSE(blob.empty());
  std::string bytes;
  {
    std::ifstream in(blob, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    bytes = text.str();
  }
  ASSERT_GT(bytes.size(), 16u);
  bytes[bytes.size() - 8] ^= 0x20;
  {
    std::ofstream out(blob, std::ios::binary);
    out << bytes;
  }

  DiagnosticEngine d2;
  auto warm = engine.generate_cached(kSpec, d2, &cache);
  ASSERT_TRUE(warm.has_value()) << d2.render();
  EXPECT_EQ(cache.stats().corrupt, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
  // The tampered entry was dropped and the regenerated bytes are intact.
  const auto* fixed = warm->find("user_cachedev.vhd");
  ASSERT_NE(fixed, nullptr);
  EXPECT_EQ(fixed->content, cold->find("user_cachedev.vhd")->content);

  // The rewritten entry hits again.
  DiagnosticEngine d3;
  ASSERT_TRUE(engine.generate_cached(kSpec, d3, &cache).has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST_F(ArtifactCacheTest, TruncatedEntryIsDroppedAndRegenerated) {
  ArtifactCache cache(dir_.string());
  Engine engine;
  DiagnosticEngine d1;
  ASSERT_TRUE(engine.generate_cached(kSpec, d1, &cache).has_value());

  const fs::path blob = find_entry_blob(dir_);
  ASSERT_FALSE(blob.empty());
  fs::resize_file(blob, fs::file_size(blob) / 2);

  DiagnosticEngine d2;
  ASSERT_TRUE(engine.generate_cached(kSpec, d2, &cache).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST_F(ArtifactCacheTest, CorruptHeaderIsDroppedAndRegenerated) {
  ArtifactCache cache(dir_.string());
  Engine engine;
  DiagnosticEngine d1;
  ASSERT_TRUE(engine.generate_cached(kSpec, d1, &cache).has_value());

  const fs::path blob = find_entry_blob(dir_);
  ASSERT_FALSE(blob.empty());
  {
    std::ofstream out(blob, std::ios::binary);
    out << "not a cache entry\n";
  }

  DiagnosticEngine d2;
  ASSERT_TRUE(engine.generate_cached(kSpec, d2, &cache).has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
  // The corrupt file itself was removed from disk.
  EXPECT_FALSE(find_entry_blob(dir_).empty())
      << "regenerated entry should be stored again";
}

TEST_F(ArtifactCacheTest, MissingEntryIsAPlainMiss) {
  ArtifactCache cache(dir_.string());
  DiagnosticEngine diags;
  EXPECT_FALSE(cache.load(ArtifactCache::key_for(kSpec, "os=baremetal"),
                          diags)
                   .has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().corrupt, 0u);
}

TEST_F(ArtifactCacheTest, WarningsAreReplayedOnHit) {
  ArtifactCache cache(dir_.string());
  Engine engine;

  DiagnosticEngine cold;
  ASSERT_TRUE(engine.generate_cached(kWarnSpec, cold, &cache).has_value());
  ASSERT_TRUE(cold.contains(DiagId::BaseAddressIgnored));

  DiagnosticEngine warm;
  ASSERT_TRUE(engine.generate_cached(kWarnSpec, warm, &cache).has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  // A cached compile must report exactly what the original did.
  EXPECT_TRUE(warm.contains(DiagId::BaseAddressIgnored));
  EXPECT_EQ(warm.render(), cold.render());
}

TEST_F(ArtifactCacheTest, NullCacheIsAPlainCompile) {
  Engine engine;
  DiagnosticEngine diags;
  auto out = engine.generate_cached(kSpec, diags, nullptr);
  ASSERT_TRUE(out.has_value()) << diags.render();
  EXPECT_NE(out->find("user_cachedev.vhd"), nullptr);
}

TEST_F(ArtifactCacheTest, WriteToMaterializesDeviceSubdirectory) {
  ArtifactCache cache(dir_.string());
  Engine engine;
  DiagnosticEngine diags;
  auto set = engine.generate_cached(kSpec, diags, &cache);
  ASSERT_TRUE(set.has_value());

  const fs::path out_dir = dir_ / "out";
  const std::string written = set->write_to(out_dir.string());
  EXPECT_EQ(fs::path(written), out_dir / "cachedev");
  for (const auto& name : set->filenames()) {
    EXPECT_TRUE(fs::exists(out_dir / "cachedev" / name)) << name;
  }
}

}  // namespace
