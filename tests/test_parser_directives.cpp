// Target-specification directive tests (thesis Figures 3.9-3.17),
// including the Figure 8.2 space-separated spellings.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"

namespace {

using namespace splice;
using namespace splice::ir;

DeviceSpec parse_ok(std::string_view text) {
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  EXPECT_TRUE(spec.has_value()) << diags.render();
  if (!spec) return DeviceSpec{};
  return std::move(*spec);
}

void parse_fail(std::string_view text, DiagId expected) {
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  EXPECT_FALSE(spec.has_value()) << text;
  EXPECT_TRUE(diags.contains(expected)) << diags.render();
}

TEST(Directives, BusTypeLowercased) {
  auto spec = parse_ok("%bus_type PLB\n");
  EXPECT_EQ(spec.target.bus_type, "plb");
}

TEST(Directives, BusWidth) {
  auto spec = parse_ok("%bus_width 32\n");
  EXPECT_EQ(spec.target.bus_width, 32u);
}

TEST(Directives, BaseAddressHex) {
  auto spec = parse_ok("%base_address 0x80000000\n");
  ASSERT_TRUE(spec.target.base_address.has_value());
  EXPECT_EQ(*spec.target.base_address, 0x80000000u);
}

TEST(Directives, BooleanDirectives) {
  auto spec = parse_ok(
      "%burst_support true\n%dma_support false\n%packing_support true\n");
  EXPECT_TRUE(spec.target.burst_support);
  EXPECT_FALSE(spec.target.dma_support);
  EXPECT_TRUE(spec.target.packing_support);
}

TEST(Directives, DeviceNameSingleWord) {
  auto spec = parse_ok("%device_name timer_v1\n");
  EXPECT_EQ(spec.target.device_name, "timer_v1");
}

TEST(Directives, Figure82SpaceSeparatedSpellings) {
  // The thesis' own example writes "% name hw timer" and "% hdl type vhdl".
  auto spec = parse_ok(
      "% name hw timer\n"
      "% hdl type vhdl\n"
      "% bus type plb\n"
      "% bus width 32\n"
      "% base address 0x8000401C\n"
      "% dma support false\n");
  EXPECT_EQ(spec.target.device_name, "hw_timer");
  EXPECT_EQ(spec.target.hdl, Hdl::Vhdl);
  EXPECT_EQ(spec.target.bus_type, "plb");
  EXPECT_EQ(spec.target.bus_width, 32u);
  EXPECT_EQ(spec.target.base_address.value(), 0x8000401Cu);
}

TEST(Directives, TargetHdlVerilog) {
  auto spec = parse_ok("%target_hdl verilog\n");
  EXPECT_EQ(spec.target.hdl, Hdl::Verilog);
}

TEST(Directives, UserTypeDefinesNewType) {
  auto spec = parse_ok(
      "%user_type uint64, unsigned long long, 64\n"
      "uint64 f(uint64 x);\n");
  auto t = spec.types.find("uint64");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->bits, 64u);
  EXPECT_FALSE(t->is_signed);
  EXPECT_EQ(t->c_spelling, "unsigned long long");
  ASSERT_EQ(spec.functions.size(), 1u);
  EXPECT_EQ(spec.functions[0].output.type.bits, 64u);
}

TEST(Directives, UserTypeUsableBeforeDefinition) {
  // §3.2.3: "the tool simply collects all the definitions" — position
  // independent.
  auto spec = parse_ok(
      "myint f();\n"
      "%user_type myint, int, 32\n");
  ASSERT_EQ(spec.functions.size(), 1u);
  EXPECT_EQ(spec.functions[0].output.type.name, "myint");
}

TEST(Directives, SignedUserType) {
  auto spec = parse_ok("%user_type s48, long long, 48\n");
  EXPECT_TRUE(spec.types.find("s48")->is_signed);
}

TEST(Directives, UnknownDirectiveRejected) {
  parse_fail("%frobnicate 5\n", DiagId::UnknownDirective);
}

TEST(Directives, MalformedUserTypeRejected) {
  parse_fail("%user_type broken\n", DiagId::MalformedDirective);
  parse_fail("%user_type a, b, xyz\n", DiagId::MalformedDirective);
}

TEST(Directives, UserTypeZeroWidthRejected) {
  parse_fail("%user_type z, int, 0\n", DiagId::BadUserTypeWidth);
}

TEST(Directives, RedefinedUserTypeRejected) {
  parse_fail("%user_type int, int, 32\n", DiagId::DuplicateUserType);
  parse_fail("%user_type q, int, 32\n%user_type q, char, 8\n",
             DiagId::DuplicateUserType);
}

TEST(Directives, UnknownHdlRejected) {
  parse_fail("%target_hdl systemc\n", DiagId::UnknownHdl);
}

TEST(Directives, MalformedBusWidthRejected) {
  parse_fail("%bus_width wide\n", DiagId::MalformedDirective);
}

TEST(Directives, MalformedBooleanRejected) {
  parse_fail("%dma_support maybe\n", DiagId::MalformedDirective);
}

TEST(Directives, DuplicateDirectiveWarnsLastWins) {
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec("%bus_width 32\n%bus_width 64\n", diags);
  ASSERT_TRUE(spec.has_value());
  EXPECT_TRUE(diags.contains(DiagId::DuplicateDirective));
  EXPECT_EQ(spec->target.bus_width, 64u);
}

TEST(Directives, DirectivesInterleaveWithDeclarations) {
  auto spec = parse_ok(
      "%device_name d\n"
      "int a();\n"
      "%bus_type plb\n"
      "int b();\n");
  EXPECT_EQ(spec.functions.size(), 2u);
  EXPECT_EQ(spec.target.bus_type, "plb");
}

TEST(Directives, CommentsIgnoredEverywhere) {
  auto spec = parse_ok(
      "// Target Specification\n"
      "%bus_type plb // trailing\n"
      "/* block */ int f();\n");
  EXPECT_EQ(spec.target.bus_type, "plb");
  EXPECT_EQ(spec.functions.size(), 1u);
}

}  // namespace
