// Lexer tests: tokenization of the Splice specification language.
#include <gtest/gtest.h>

#include "frontend/lexer.hpp"

namespace {

using namespace splice;
using namespace splice::frontend;

std::vector<Token> lex(std::string_view text, DiagnosticEngine& diags) {
  Lexer lexer(text, diags);
  return lexer.tokenize();
}

std::vector<Tok> kinds(const std::vector<Token>& toks) {
  std::vector<Tok> out;
  for (const auto& t : toks) out.push_back(t.kind);
  return out;
}

TEST(Lexer, BasicPrototypeTokens) {
  DiagnosticEngine diags;
  auto toks = lex("long get_status();", diags);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(kinds(toks),
            (std::vector<Tok>{Tok::Ident, Tok::Ident, Tok::LParen,
                              Tok::RParen, Tok::Semi, Tok::EndOfInput}));
  EXPECT_EQ(toks[1].text, "get_status");
}

TEST(Lexer, ExtensionOperators) {
  DiagnosticEngine diags;
  auto toks = lex("int*:16^+ x", diags);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(kinds(toks),
            (std::vector<Tok>{Tok::Ident, Tok::Star, Tok::Colon, Tok::Number,
                              Tok::Caret, Tok::Plus, Tok::Ident,
                              Tok::EndOfInput}));
  EXPECT_EQ(toks[3].value, 16u);
}

TEST(Lexer, HexLiterals) {
  DiagnosticEngine diags;
  auto toks = lex("%base_address 0x8000401C", diags);
  EXPECT_FALSE(diags.has_errors());
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[2].kind, Tok::HexNumber);
  EXPECT_EQ(toks[2].value, 0x8000401Cu);
}

TEST(Lexer, LineAndBlockComments) {
  DiagnosticEngine diags;
  auto toks = lex("// comment\nint /* mid */ x;", diags);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(kinds(toks), (std::vector<Tok>{Tok::Ident, Tok::Ident, Tok::Semi,
                                           Tok::EndOfInput}));
  EXPECT_EQ(toks[0].loc.line, 2u);
}

TEST(Lexer, UnterminatedBlockCommentReported) {
  DiagnosticEngine diags;
  (void)lex("int x; /* never closed", diags);
  EXPECT_TRUE(diags.contains(DiagId::UnterminatedComment));
}

TEST(Lexer, UnexpectedCharacterReportedAndSkipped) {
  DiagnosticEngine diags;
  auto toks = lex("int @ x;", diags);
  EXPECT_TRUE(diags.contains(DiagId::UnexpectedCharacter));
  // Lexing continues past the bad character.
  EXPECT_EQ(toks[1].text, "x");
}

TEST(Lexer, BracesForFigure82Form) {
  DiagnosticEngine diags;
  auto toks = lex("void disable{};", diags);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(kinds(toks), (std::vector<Tok>{Tok::Ident, Tok::Ident,
                                           Tok::LBrace, Tok::RBrace, Tok::Semi,
                                           Tok::EndOfInput}));
}

TEST(Lexer, TracksLineAndColumn) {
  DiagnosticEngine diags;
  auto toks = lex("a\n  b", diags);
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[0].loc.column, 1u);
  EXPECT_EQ(toks[1].loc.line, 2u);
  EXPECT_EQ(toks[1].loc.column, 3u);
}

TEST(Lexer, MalformedHexReported) {
  DiagnosticEngine diags;
  (void)lex("0x", diags);
  EXPECT_TRUE(diags.contains(DiagId::MalformedNumber));
}

TEST(Lexer, HugeDecimalOverflowReported) {
  DiagnosticEngine diags;
  (void)lex("99999999999999999999999999", diags);
  EXPECT_TRUE(diags.contains(DiagId::MalformedNumber));
}

}  // namespace
