// Top-level engine tests: specification text in, the Figures 8.3 + 8.7
// file sets out, including on-disk output and error paths.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/splice.hpp"
#include "devices/timer.hpp"
#include "support/telemetry.hpp"

namespace {

using namespace splice;

TEST(Engine, TimerSpecProducesFigure83And87FileSets) {
  Engine engine;
  DiagnosticEngine diags;
  auto artifacts = engine.generate(devices::timer_spec_text(), diags);
  ASSERT_TRUE(artifacts.has_value()) << diags.render();

  // Figure 8.3: plb_interface.vhd, user_hw_timer.vhd, func_<name>.vhd x7.
  for (const char* name :
       {"plb_interface.vhd", "user_hw_timer.vhd", "func_disable.vhd",
        "func_enable.vhd", "func_set_threshold.vhd", "func_get_threshold.vhd",
        "func_get_snapshot.vhd", "func_get_clock.vhd",
        "func_get_status.vhd"}) {
    EXPECT_NE(artifacts->find(name), nullptr) << name;
  }
  // Figure 8.7: splice_lib.h, hw_timer_driver.c, hw_timer_driver.h.
  for (const char* name :
       {"splice_lib.h", "hw_timer_driver.c", "hw_timer_driver.h"}) {
    EXPECT_NE(artifacts->find(name), nullptr) << name;
  }
  EXPECT_EQ(artifacts->filenames().size(), 12u);
  EXPECT_EQ(artifacts->spec.target.device_name, "hw_timer");

  // The user-type typedefs survive into the driver header so existing
  // prototypes keep compiling (§3.2.3).
  const auto* header = artifacts->find("hw_timer_driver.h");
  EXPECT_NE(header->content.find("typedef unsigned long long llong;"),
            std::string::npos);
  EXPECT_NE(header->content.find("llong get_threshold(void);"),
            std::string::npos);
}

TEST(Engine, DriverSourceMatchesFigure61Shape) {
  Engine engine;
  DiagnosticEngine diags;
  auto artifacts = engine.generate(devices::timer_spec_text(), diags);
  ASSERT_TRUE(artifacts.has_value()) << diags.render();
  const std::string& c = artifacts->find("hw_timer_driver.c")->content;
  EXPECT_NE(c.find("#define SET_THRESHOLD_ID 3"), std::string::npos);
  EXPECT_NE(c.find("func_addr = SET_ADDRESS(SET_THRESHOLD_ID);"),
            std::string::npos);
  EXPECT_NE(c.find("WAIT_FOR_RESULTS(func_addr);"), std::string::npos);
  EXPECT_NE(c.find("#include \"splice_lib.h\""), std::string::npos);
}

TEST(Engine, WritesDeviceSubdirectory) {
  Engine engine;
  DiagnosticEngine diags;
  auto artifacts = engine.generate(devices::timer_spec_text(), diags);
  ASSERT_TRUE(artifacts.has_value());
  const auto tmp =
      std::filesystem::temp_directory_path() / "splice_engine_test";
  std::filesystem::remove_all(tmp);
  const std::string dir = artifacts->write_to(tmp.string());
  // §3.2.3: output goes under a subdirectory named after the device.
  EXPECT_NE(dir.find("hw_timer"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(dir) / "plb_interface.vhd"));
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(dir) / "hw_timer_driver.c"));
  std::filesystem::remove_all(tmp);
}

TEST(Engine, UnknownBusReportsLibraryName) {
  Engine engine;
  DiagnosticEngine diags;
  auto artifacts = engine.generate(
      "%device_name d\n%bus_type quicklink\n%bus_width 32\nint f();\n",
      diags);
  EXPECT_FALSE(artifacts.has_value());
  EXPECT_TRUE(diags.contains(DiagId::UnknownBusType));
  // The message points at the §7.2 library the user would need.
  EXPECT_NE(diags.render().find("libquicklink_interface.so"),
            std::string::npos);
}

TEST(Engine, InvalidSpecRejectedWithDiagnostics) {
  Engine engine;
  DiagnosticEngine diags;
  auto artifacts = engine.generate(
      "%device_name d\n%bus_type plb\n%bus_width 32\nint f();\n", diags);
  EXPECT_FALSE(artifacts.has_value());
  EXPECT_TRUE(diags.contains(DiagId::MissingBaseAddress));
}

TEST(Engine, ParseErrorsPropagate) {
  Engine engine;
  DiagnosticEngine diags;
  auto artifacts = engine.generate("%bus_type plb\nint f(;\n", diags);
  EXPECT_FALSE(artifacts.has_value());
  EXPECT_TRUE(diags.has_errors());
}

TEST(Engine, VerilogTargetProducesDotVFiles) {
  Engine engine;
  DiagnosticEngine diags;
  auto artifacts = engine.generate(
      "%device_name vdev\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\n%target_hdl verilog\nint f(int x);\n",
      diags);
  ASSERT_TRUE(artifacts.has_value()) << diags.render();
  EXPECT_NE(artifacts->find("user_vdev.v"), nullptr);
  EXPECT_NE(artifacts->find("func_f.v"), nullptr);
  // The native interface template library is VHDL-based (as in the
  // thesis); user logic follows %target_hdl.
  EXPECT_NE(artifacts->find("plb_interface.vhd"), nullptr);
}

TEST(Engine, MultiInstanceSharesStubStructure) {
  // The HDL AST is hash-consed: a 9-instance declaration must not
  // re-elaborate the stub per instance.  Two observable guarantees: the
  // per-instance HDL text (the one stub file all nine instantiations
  // share) is byte-identical to the stub of a single-instance spec with
  // the same FUNC_ID space (8 filler functions keep the id width at 4
  // bits), and the gen.hdl_cse_hits counter proves subtree sharing
  // actually engaged — more hits with 9 instances than with 1, because
  // the arbiter's per-instance wiring collapses onto interned nodes.
  constexpr const char* kHeader =
      "%device_name cse_dev\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\n";
  const std::string one = std::string(kHeader) +
                          "int accum(int v);\n"
                          "int p1(int v);\nint p2(int v);\nint p3(int v);\n"
                          "int p4(int v);\nint p5(int v);\nint p6(int v);\n"
                          "int p7(int v);\nint p8(int v);\n";
  const std::string nine = std::string(kHeader) + "int accum(int v):9;\n";

  auto run = [](const std::string& spec, support::telemetry::MetricsRegistry&
                                             metrics) {
    EngineOptions options;
    options.metrics = &metrics;
    Engine engine(adapters::AdapterRegistry::instance(), options);
    DiagnosticEngine diags;
    auto artifacts = engine.generate(spec, diags);
    EXPECT_TRUE(artifacts.has_value()) << diags.render();
    return artifacts;
  };

  const std::string solo = std::string(kHeader) + "int accum(int v);\n";

  support::telemetry::MetricsRegistry metrics_one;
  support::telemetry::MetricsRegistry metrics_nine;
  support::telemetry::MetricsRegistry metrics_solo;
  auto a = run(one, metrics_one);
  auto b = run(nine, metrics_nine);
  auto c = run(solo, metrics_solo);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_TRUE(c.has_value());

  const auto* stub_one = a->find("func_accum.vhd");
  const auto* stub_nine = b->find("func_accum.vhd");
  ASSERT_NE(stub_one, nullptr);
  ASSERT_NE(stub_nine, nullptr);
  EXPECT_EQ(stub_one->content, stub_nine->content)
      << "per-instance stub text must not depend on the instance count";

  const std::uint64_t hits_nine =
      metrics_nine.snapshot().counters.at("gen.hdl_cse_hits");
  const std::uint64_t hits_solo =
      metrics_solo.snapshot().counters.at("gen.hdl_cse_hits");
  EXPECT_GT(hits_nine, 0u) << "interning never fired on the 9-instance spec";
  EXPECT_GT(hits_nine, hits_solo)
      << "9 instances should share strictly more subtrees than 1";
}

TEST(Engine, LinuxDriverOption) {
  EngineOptions options;
  options.driver_os = drivergen::DriverOs::Linux;
  Engine engine(adapters::AdapterRegistry::instance(), options);
  DiagnosticEngine diags;
  auto artifacts = engine.generate(devices::timer_spec_text(), diags);
  ASSERT_TRUE(artifacts.has_value()) << diags.render();
  EXPECT_NE(artifacts->find("splice_lib.h")->content.find("mmap"),
            std::string::npos);
}

}  // namespace
