// Generated-C tests: driver sources (chapter 6 listings) and the per-bus
// macro libraries (Figure 7.2), down to the constructs the thesis calls
// out (byte-wise packing pointers, malloc'd multi-value outputs, the
// memory-leak caveat, DMA macros, the strictly synchronous polling wait).
#include <gtest/gtest.h>

#include "drivergen/c_emitter.hpp"
#include "drivergen/maclib.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"

namespace {

using namespace splice;
using namespace splice::drivergen;

ir::DeviceSpec spec_from(const std::string& body,
                         const std::string& directives = "") {
  std::string text =
      "%device_name emit\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\n" + directives + body;
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  EXPECT_TRUE(spec.has_value()) << diags.render();
  EXPECT_TRUE(ir::validate(*spec, diags)) << diags.render();
  return std::move(*spec);
}

TEST(CPrototypes, MatchDeclarationShapes) {
  auto spec = spec_from(
      "%user_type llong, unsigned long long, 64\n"
      "float sample(int*:2 x, int y);\n"
      "nowait fire(int a);\n"
      "void cfg();\n"
      "llong wide();\n"
      "int multi(int v):4;\n"
      "int*:4 quad(char seed);\n");
  EXPECT_EQ(c_prototype(spec, *spec.find_function("sample")),
            "float sample(int* x, int y)");
  EXPECT_EQ(c_prototype(spec, *spec.find_function("fire")),
            "void fire(int a)");
  EXPECT_EQ(c_prototype(spec, *spec.find_function("cfg")), "void cfg(void)");
  EXPECT_EQ(c_prototype(spec, *spec.find_function("wide")),
            "llong wide(void)");
  // §6.1.2: multi-instance drivers take the extra selector.
  EXPECT_EQ(c_prototype(spec, *spec.find_function("multi")),
            "int multi(int v, int inst_index)");
  // Multi-value outputs return a pointer the caller owns.
  EXPECT_EQ(c_prototype(spec, *spec.find_function("quad")),
            "int* quad(char seed)");
}

TEST(CDriver, ArrayLoopUsesWriteSingleWithoutBurst) {
  auto spec = spec_from("void f(int*:6 xs);\n");
  const auto src = emit_driver_sources(spec);
  EXPECT_NE(src.source.find("WRITE_SINGLE(func_addr, &xs[_i]);"),
            std::string::npos);
  EXPECT_EQ(src.source.find("WRITE_QUAD"), std::string::npos);
}

TEST(CDriver, BurstLadderEmittedWhenEnabled) {
  auto spec = spec_from("void f(int*:9 xs);\n", "");
  spec.target.burst_support = true;  // bus-independent text generation
  const auto src = emit_driver_sources(spec);
  EXPECT_NE(src.source.find("WRITE_QUAD(func_addr, &xs[_i]);"),
            std::string::npos);
  EXPECT_NE(src.source.find("WRITE_DOUBLE(func_addr, &xs[_i]);"),
            std::string::npos);
}

TEST(CDriver, PackedTransferWalksByteWisePointer) {
  // §6.1.1: "coupled with a byte-wise incrementing pointer".
  auto spec = spec_from("void f(char*:8+ xs);\n");
  const auto src = emit_driver_sources(spec);
  EXPECT_NE(src.source.find("const unsigned int* _w"), std::string::npos);
  EXPECT_NE(src.source.find("/ 4"), std::string::npos);  // 4 lanes per word
}

TEST(CDriver, DmaParameterUsesWriteDmaMacro) {
  auto spec = spec_from("void f(int*:8^ xs);\n", "%dma_support true\n");
  const auto src = emit_driver_sources(spec);
  EXPECT_NE(src.source.find("WRITE_DMA(func_addr, xs,"), std::string::npos);
}

TEST(CDriver, MultiValueOutputMallocsAndWarns) {
  // §6.1.1: drivers allocate and the caller must free.
  auto spec = spec_from("int*:4 quad();\n");
  const auto src = emit_driver_sources(spec);
  EXPECT_NE(src.source.find("malloc"), std::string::npos);
  EXPECT_NE(src.source.find("free"), std::string::npos);  // the caveat note
  EXPECT_NE(src.source.find("return result;"), std::string::npos);
}

TEST(CDriver, BlockingVoidReadsPseudoOutput) {
  auto spec = spec_from("void cfg(int x);\n");
  const auto src = emit_driver_sources(spec);
  EXPECT_NE(src.source.find("READ_SINGLE(func_addr, &_sync);"),
            std::string::npos);
}

TEST(CDriver, NowaitSkipsWaitAndRead) {
  auto spec = spec_from("nowait fire(int x);\n");
  const auto src = emit_driver_sources(spec);
  const std::size_t fn_pos = src.source.find("void fire(int x)");
  ASSERT_NE(fn_pos, std::string::npos);
  EXPECT_EQ(src.source.find("WAIT_FOR_RESULTS", fn_pos), std::string::npos);
  EXPECT_EQ(src.source.find("READ_SINGLE", fn_pos), std::string::npos);
}

TEST(CDriver, SplitResultReadsWordByWord) {
  auto spec = spec_from("%user_type llong, unsigned long long, 64\n"
                        "llong wide();\n");
  const auto src = emit_driver_sources(spec);
  EXPECT_NE(src.source.find("most significant word first"),
            std::string::npos);
}

TEST(CDriver, MultiInstanceAddsIndexToAddress) {
  auto spec = spec_from("int f(int v):4;\n");
  const auto src = emit_driver_sources(spec);
  EXPECT_NE(src.source.find("SET_ADDRESS(F_ID + inst_index);"),
            std::string::npos);
}

TEST(CDriver, HeaderGuardsAndFilenames) {
  auto spec = spec_from("int f();\n");
  const auto src = emit_driver_sources(spec);
  EXPECT_EQ(src.header_filename, "emit_driver.h");
  EXPECT_EQ(src.source_filename, "emit_driver.c");
  EXPECT_NE(src.header.find("#ifndef EMIT_DRIVER_H"), std::string::npos);
}

TEST(MacLib, UnknownBusThrows) {
  auto spec = spec_from("int f();\n");
  spec.target.bus_type = "mystery";
  EXPECT_THROW(emit_macro_library(spec), SpliceError);
}

TEST(MacLib, DmaMacrosOnlyWhenEnabled) {
  auto plain = spec_from("int f();\n");
  EXPECT_EQ(emit_macro_library(plain).find("WRITE_DMA"), std::string::npos);
  auto dma = spec_from("void f(int*:4^ x);\n", "%dma_support true\n");
  const std::string lib = emit_macro_library(dma);
  EXPECT_NE(lib.find("#define WRITE_DMA"), std::string::npos);
  EXPECT_NE(lib.find("#define READ_DMA"), std::string::npos);
  EXPECT_NE(lib.find("SPLICE_DMA_CTRL"), std::string::npos);
}

TEST(MacLib, OpbAndAhbShareMmioShape) {
  auto spec = spec_from("int f();\n");
  for (const char* bus : {"opb", "ahb"}) {
    spec.target.bus_type = bus;
    const std::string lib = emit_macro_library(spec);
    EXPECT_NE(lib.find("#define WRITE_SINGLE"), std::string::npos) << bus;
    EXPECT_NE(lib.find("volatile unsigned int*"), std::string::npos) << bus;
  }
}

TEST(MacLib, GeneratedCCompilesStandalone) {
  // The strongest structural check available without a cross compiler:
  // the macro library plus a generated driver form a C translation unit
  // that must at least be brace/paren balanced and include-guarded.
  auto spec = spec_from("%user_type llong, unsigned long long, 64\n"
                        "void set_threshold(llong t);\nllong get();\n");
  const auto src = emit_driver_sources(spec);
  const std::string all = emit_macro_library(spec) + src.header + src.source;
  long parens = 0;
  long braces = 0;
  for (char c : all) {
    parens += c == '(' ? 1 : c == ')' ? -1 : 0;
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
  }
  EXPECT_EQ(parens, 0);
  EXPECT_EQ(braces, 0);
}

}  // namespace
