// The reserved function identifier 0 (thesis §4.2.2): reads of it must
// return the CALC_DONE status vector on every native interface, served by
// the adapter itself without involving any user-logic stub.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "runtime/platform.hpp"

namespace {

using namespace splice;

ir::DeviceSpec make_spec(const std::string& bus) {
  // 'armed' is a zero-input value function: its stub sits in the output
  // state with CALC_DONE raised, so the status vector has bit 1 set from
  // reset.  'lazy' (FUNC_ID 2) idles in its input state with bit 2 clear.
  std::string text = "%device_name status\n%bus_type " + bus +
                     "\n%bus_width 32\n" +
                     (bus != "fcb" ? "%base_address 0x80000000\n" : "") +
                     "int armed();\nint lazy(int x);\n";
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  EXPECT_TRUE(spec.has_value() && ir::validate(*spec, diags))
      << diags.render();
  return std::move(*spec);
}

class StatusRegister : public ::testing::TestWithParam<const char*> {};

TEST_P(StatusRegister, FuncIdZeroReturnsCalcDoneVector) {
  elab::BehaviorMap b;
  b.set("armed", [](const elab::CallContext&) {
    return elab::CalcResult{1, {0xA5u}};
  });
  runtime::VirtualPlatform vp(make_spec(GetParam()), b);

  // Let the stubs settle out of reset, then read the status register
  // directly through the bus master (what WAIT_FOR_RESULTS compiles to).
  vp.sim().step(8);
  vp.port().read(sis::kStatusFuncId, 1);
  ASSERT_TRUE(vp.sim().step_until([&] { return !vp.port().busy(); }, 1000));
  ASSERT_EQ(vp.port().read_data().size(), 1u);
  const std::uint64_t status = vp.port().read_data()[0];

  EXPECT_EQ((status >> 1) & 1, 1u) << "armed (FUNC_ID 1) holds CALC_DONE";
  EXPECT_EQ((status >> 2) & 1, 0u) << "lazy (FUNC_ID 2) is idle";
  EXPECT_EQ(status & 1, 0u) << "bit 0 is the reserved identifier itself";
}

TEST_P(StatusRegister, StatusReadDoesNotDisturbUserLogic) {
  elab::BehaviorMap b;
  b.set("armed", [](const elab::CallContext&) {
    return elab::CalcResult{1, {0x77u}};
  });
  b.set("lazy", [](const elab::CallContext& ctx) {
    return elab::CalcResult{2, {ctx.scalar(0) + 1}};
  });
  runtime::VirtualPlatform vp(make_spec(GetParam()), b);

  // Interleave status reads with real calls; results stay correct and the
  // protocol checker observes no user-logic transaction for the status
  // reads (they never reach IO_ENABLE).
  vp.sim().step(8);
  const std::uint64_t reads_before = vp.checker().reads_observed();
  vp.port().read(sis::kStatusFuncId, 1);
  ASSERT_TRUE(vp.sim().step_until([&] { return !vp.port().busy(); }, 1000));
  EXPECT_EQ(vp.checker().reads_observed(), reads_before)
      << "status reads are served by the adapter, not the stubs";

  auto r = vp.call("lazy", {{41}});
  EXPECT_EQ(r.outputs.at(0), 42u);
  EXPECT_EQ(vp.call("armed").outputs.at(0), 0x77u);
  EXPECT_TRUE(vp.checker().clean())
      << ::testing::PrintToString(vp.checker().violations());
}

INSTANTIATE_TEST_SUITE_P(AllBuses, StatusRegister,
                         ::testing::Values("plb", "opb", "fcb", "apb", "ahb"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
