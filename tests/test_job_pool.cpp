// The scheduler underneath the parallel generation pipeline.  The contract
// under test: parallel_for covers every index exactly once, results land in
// index-addressed slots (ordering is the caller's job), the lowest failing
// index's exception is the one rethrown, and nested parallel_for over one
// shared pool cannot deadlock because the calling thread participates.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/job_pool.hpp"

namespace {

using splice::support::JobPool;
using splice::support::parallel_for;

TEST(JobPool, CoversEveryIndexExactlyOnce) {
  JobPool pool(3);
  constexpr std::size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(&pool, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(JobPool, ResultsLandInIndexSlots) {
  JobPool pool(4);
  std::vector<int> out(257, -1);
  parallel_for(&pool, out.size(),
               [&](std::size_t i) { out[i] = static_cast<int>(i) * 3; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 3);
  }
}

TEST(JobPool, NullPoolRunsInline) {
  std::vector<std::size_t> order;
  parallel_for(nullptr, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(JobPool, ZeroWorkerPoolRunsInline) {
  JobPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  std::vector<std::size_t> order;
  parallel_for(&pool, 4, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(JobPool, SingleElementRangeRunsInline) {
  JobPool pool(2);
  bool ran = false;
  parallel_for(&pool, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(JobPool, EmptyRangeIsANoop) {
  JobPool pool(2);
  parallel_for(&pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(JobPool, LowestFailingIndexWins) {
  JobPool pool(4);
  // Indices 3, 9 and 40 throw; a serial loop would have surfaced 3 first,
  // so the parallel run must rethrow exactly that one — regardless of
  // which worker hit its exception first.
  for (int round = 0; round < 20; ++round) {
    try {
      parallel_for(&pool, 64, [&](std::size_t i) {
        if (i == 3 || i == 9 || i == 40) {
          throw std::runtime_error("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom at 3");
    }
  }
}

TEST(JobPool, RangeSettlesBeforeRethrow) {
  JobPool pool(4);
  std::atomic<int> completed{0};
  try {
    parallel_for(&pool, 100, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("early");
      completed.fetch_add(1);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
    // Every non-throwing index must have run to completion before the
    // rethrow: callers may free job state right after parallel_for.
    EXPECT_EQ(completed.load(), 99);
  }
}

TEST(JobPool, NestedParallelForSharesOnePoolWithoutDeadlock) {
  // Mirrors the CLI shape: outer fan-out over specs, inner fan-out over
  // modules, one shared pool.  With a caller-participation scheduler this
  // completes even though the pool has fewer workers than live ranges.
  JobPool pool(2);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 16;
  std::vector<std::atomic<int>> counts(kOuter);
  parallel_for(&pool, kOuter, [&](std::size_t o) {
    parallel_for(&pool, kInner,
                 [&](std::size_t) { counts[o].fetch_add(1); });
  });
  for (std::size_t o = 0; o < kOuter; ++o) {
    EXPECT_EQ(counts[o].load(), static_cast<int>(kInner));
  }
}

TEST(JobPool, SubmitRunsDetachedTasks) {
  std::atomic<int> ran{0};
  {
    JobPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&] { ran.fetch_add(1); });
    }
    // Destructor drains the queue before joining.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(JobPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(JobPool::default_thread_count(), 1u);
}

}  // namespace
