// End-to-end smoke tests: parse a specification, validate it, elaborate the
// device onto each supported bus, and drive generated-driver calls through
// the cycle-accurate platform — asserting data correctness and SIS
// protocol cleanliness.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "runtime/platform.hpp"

namespace {

using namespace splice;

ir::DeviceSpec make_spec(const std::string& bus, bool burst = false,
                         bool dma = false) {
  std::string text = R"(
    %device_name smoke_dev
    %bus_type )" + bus + R"(
    %bus_width 32
    %base_address 0x80004000
    %burst_support )" + (burst ? "true" : "false") + R"(
    %dma_support )" + (dma ? "true" : "false") + R"(

    int add2(int a, int b);
    int sum_n(char n, int*:n vals)" + (dma ? "^" : "") + R"( );
  )";
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  EXPECT_TRUE(spec.has_value()) << diags.render();
  EXPECT_TRUE(ir::validate(*spec, diags)) << diags.render();
  return std::move(*spec);
}

elab::BehaviorMap make_behaviors() {
  elab::BehaviorMap b;
  b.set("add2", [](const elab::CallContext& ctx) {
    return elab::CalcResult{3, {ctx.scalar(0) + ctx.scalar(1)}};
  });
  b.set("sum_n", [](const elab::CallContext& ctx) {
    std::uint64_t sum = 0;
    for (std::uint64_t v : ctx.array(1)) sum += v;
    return elab::CalcResult{5, {sum}};
  });
  return b;
}

class SmokeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SmokeTest, ScalarCallReturnsCorrectValue) {
  runtime::VirtualPlatform vp(make_spec(GetParam()), make_behaviors());
  auto r = vp.call("add2", {{7}, {35}});
  ASSERT_EQ(r.outputs.size(), 1u);
  EXPECT_EQ(r.outputs[0], 42u);
  EXPECT_GT(r.bus_cycles, 0u);
  EXPECT_TRUE(vp.checker().clean())
      << ::testing::PrintToString(vp.checker().violations());
}

TEST_P(SmokeTest, ImplicitArrayCallSums) {
  runtime::VirtualPlatform vp(make_spec(GetParam()), make_behaviors());
  auto r = vp.call("sum_n", {{4}, {10, 20, 30, 40}});
  ASSERT_EQ(r.outputs.size(), 1u);
  EXPECT_EQ(r.outputs[0], 100u);
  EXPECT_TRUE(vp.checker().clean())
      << ::testing::PrintToString(vp.checker().violations());
}

TEST_P(SmokeTest, BackToBackCallsStayConsistent) {
  runtime::VirtualPlatform vp(make_spec(GetParam()), make_behaviors());
  for (std::uint64_t k = 1; k <= 5; ++k) {
    auto r = vp.call("add2", {{k}, {k * 10}});
    ASSERT_EQ(r.outputs.size(), 1u);
    EXPECT_EQ(r.outputs[0], k * 11);
  }
  EXPECT_TRUE(vp.checker().clean())
      << ::testing::PrintToString(vp.checker().violations());
}

INSTANTIATE_TEST_SUITE_P(AllBuses, SmokeTest,
                         ::testing::Values("plb", "opb", "fcb", "apb", "ahb"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(SmokeBursts, FcbBurstWritesDeliverAllWords) {
  runtime::VirtualPlatform vp(make_spec("fcb", /*burst=*/true),
                              make_behaviors());
  auto r = vp.call("sum_n", {{6}, {1, 2, 3, 4, 5, 6}});
  ASSERT_EQ(r.outputs.size(), 1u);
  EXPECT_EQ(r.outputs[0], 21u);
  EXPECT_TRUE(vp.checker().clean())
      << ::testing::PrintToString(vp.checker().violations());
}

TEST(SmokeDma, PlbDmaTransfersDeliverAllWords) {
  runtime::VirtualPlatform vp(make_spec("plb", /*burst=*/false, /*dma=*/true),
                              make_behaviors());
  auto r = vp.call("sum_n", {{5}, {5, 10, 15, 20, 25}});
  ASSERT_EQ(r.outputs.size(), 1u);
  EXPECT_EQ(r.outputs[0], 75u);
  EXPECT_TRUE(vp.checker().clean())
      << ::testing::PrintToString(vp.checker().violations());
}

}  // namespace
