// Tests of the unified telemetry layer (support/telemetry): metric
// primitives and registry, snapshot diff algebra, span nesting and
// cross-thread parent propagation through job_pool::parallel_for, Chrome
// trace JSON well-formedness, and the determinism guard — tracing must
// never change the generated artifact bytes (pinned against the golden
// fixtures).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/artifact_cache.hpp"
#include "core/splice.hpp"
#include "support/job_pool.hpp"
#include "support/telemetry.hpp"

namespace {

namespace fs = std::filesystem;
using namespace splice::support::telemetry;

#ifndef SPLICE_GOLDEN_DIR
#define SPLICE_GOLDEN_DIR "tests/golden"
#endif

// ---------------------------------------------------------------------------
// Metrics

TEST(Metrics, CounterGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g;
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  g.set(1000);
  EXPECT_EQ(g.value(), 1000);
}

TEST(Metrics, HistogramSnapshotAndQuantiles) {
  Histogram h;
  for (std::uint64_t v : {1u, 2u, 3u, 100u, 1000u}) h.record(v);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 1106u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 1106.0 / 5.0);
  // Bucket-resolution bounds: the p50 sample (3) lives in bucket [2,4),
  // the p95+ tail reaches the bucket holding 1000.
  EXPECT_GE(s.quantile_bound(0.5), 3u);
  EXPECT_LT(s.quantile_bound(0.5), 100u);
  EXPECT_GE(s.quantile_bound(1.0), 1000u);
}

TEST(Metrics, RegistryGetOrCreateReturnsStableObjects) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&reg.counter("y"), &a);
  Histogram& h1 = reg.histogram("h");
  EXPECT_EQ(&h1, &reg.histogram("h"));
  Gauge& g1 = reg.gauge("g");
  EXPECT_EQ(&g1, &reg.gauge("g"));

  a.add(2);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("x"), 2u);
  EXPECT_EQ(snap.counters.at("y"), 0u);
}

TEST(Metrics, SnapshotDiffSubtractsAndDropsZeroDeltas) {
  MetricsRegistry reg;
  reg.counter("work").add(5);
  reg.counter("idle").add(3);
  reg.gauge("depth").set(2);
  reg.histogram("lat").record(10);
  const MetricsSnapshot before = reg.snapshot();

  reg.counter("work").add(7);
  reg.gauge("depth").set(9);
  reg.histogram("lat").record(20);
  reg.histogram("lat").record(30);
  const MetricsSnapshot after = reg.snapshot();

  const MetricsSnapshot delta = after.diff_since(before);
  EXPECT_EQ(delta.counters.at("work"), 7u);
  // Untouched counters drop out of the delta entirely.
  EXPECT_EQ(delta.counters.count("idle"), 0u);
  // Gauges keep the later value (a level, not a rate).
  EXPECT_EQ(delta.gauges.at("depth"), 9);
  EXPECT_EQ(delta.histograms.at("lat").count, 2u);
  EXPECT_EQ(delta.histograms.at("lat").sum, 50u);
}

TEST(Metrics, JsonRenderHasStableTopLevelKeys) {
  MetricsRegistry reg;
  reg.counter("c").add(1);
  reg.histogram("h").record(4);
  const std::string json = reg.render(Format::Json);
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"c\": 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Span tracer

TEST(Tracer, SpansAreNoopsWithoutInstalledTracer) {
  ASSERT_EQ(Tracer::active(), nullptr);
  Span s("orphan", "test");
  EXPECT_FALSE(s.recording());
  EXPECT_EQ(s.id(), 0u);
  EXPECT_EQ(current_span_id(), 0u);
}

TEST(Tracer, RecordsNestedParentsOnOneThread) {
  Tracer tracer;
  Tracer::install(&tracer);
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    Span outer("outer", "test");
    outer.arg("k", 7);
    outer_id = outer.id();
    EXPECT_EQ(current_span_id(), outer_id);
    {
      Span inner("inner", "test");
      inner_id = inner.id();
      EXPECT_EQ(current_span_id(), inner_id);
    }
    EXPECT_EQ(current_span_id(), outer_id);
  }
  Tracer::install(nullptr);

  const auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  std::map<std::uint64_t, Tracer::SpanRecord> by_id;
  for (const auto& s : spans) by_id[s.id] = s;
  EXPECT_EQ(by_id.at(outer_id).parent, 0u);
  EXPECT_EQ(by_id.at(inner_id).parent, outer_id);
  EXPECT_EQ(by_id.at(outer_id).name, "outer");
  ASSERT_EQ(by_id.at(outer_id).args.size(), 1u);
  EXPECT_EQ(by_id.at(outer_id).args[0].first, "k");
  EXPECT_EQ(by_id.at(outer_id).args[0].second, 7u);
  // The child is contained in the parent's interval.
  EXPECT_GE(by_id.at(inner_id).start_ns, by_id.at(outer_id).start_ns);
}

TEST(Tracer, ParallelForPropagatesTheLaunchingSpanAsParent) {
  Tracer tracer;
  Tracer::install(&tracer);
  splice::support::JobPool pool(3);
  std::uint64_t root_id = 0;
  {
    Span root("root", "test");
    root_id = root.id();
    splice::support::parallel_for(&pool, 64, [](std::size_t) {
      Span task("task", "test");
    });
  }
  Tracer::install(nullptr);

  const auto spans = tracer.spans();
  std::size_t tasks = 0;
  std::set<std::uint32_t> tids;
  for (const auto& s : spans) {
    if (s.name != "task") continue;
    ++tasks;
    tids.insert(s.tid);
    // Every task span — whichever thread ran it — parents under the span
    // that issued the fan-out: the whole batch is one tree, no orphans.
    EXPECT_EQ(s.parent, root_id) << "task on tid " << s.tid;
  }
  EXPECT_EQ(tasks, 64u);
  EXPECT_GE(tids.size(), 1u);
}

TEST(Tracer, NestedParallelForKeepsTheChain) {
  Tracer tracer;
  Tracer::install(&tracer);
  splice::support::JobPool pool(2);
  std::uint64_t root_id = 0;
  {
    Span root("root", "test");
    root_id = root.id();
    splice::support::parallel_for(&pool, 4, [&](std::size_t) {
      Span mid("mid", "test");
      // Inner fan-out (serial pool): leaves must parent under this mid
      // span, not under the root.
      splice::support::parallel_for(nullptr, 3, [](std::size_t) {
        Span leaf("leaf", "test");
      });
    });
  }
  Tracer::install(nullptr);

  std::map<std::uint64_t, Tracer::SpanRecord> by_id;
  for (const auto& s : tracer.spans()) by_id[s.id] = s;
  std::size_t mids = 0;
  std::size_t leaves = 0;
  for (const auto& [id, s] : by_id) {
    if (s.name == "mid") {
      ++mids;
      EXPECT_EQ(s.parent, root_id);
    } else if (s.name == "leaf") {
      ++leaves;
      ASSERT_NE(s.parent, 0u);
      EXPECT_EQ(by_id.at(s.parent).name, "mid");
    }
  }
  EXPECT_EQ(mids, 4u);
  EXPECT_EQ(leaves, 12u);
}

// Minimal recursive-descent JSON validator: enough to prove the trace is
// syntactically well-formed (what Perfetto's loader requires first).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Tracer, ChromeTraceJsonIsWellFormed) {
  Tracer tracer;
  Tracer::install(&tracer);
  splice::support::JobPool pool(2);
  {
    Span root("batch", "cli");
    root.arg("specs", 2);
    splice::support::parallel_for(&pool, 8, [](std::size_t i) {
      Span task("task \"quoted\\name\"", "gen");  // exercises escaping
      task.arg("index", i);
    });
  }
  Tracer::install(nullptr);

  const std::string json = tracer.chrome_trace_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"batch\""), std::string::npos);
  // 9 spans were recorded; every one becomes an "X" complete event.
  std::size_t x_events = 0;
  for (std::size_t p = json.find("\"ph\": \"X\""); p != std::string::npos;
       p = json.find("\"ph\": \"X\"", p + 1)) {
    ++x_events;
  }
  EXPECT_EQ(x_events, 9u);
}

TEST(Tracer, ReinstallAfterUninstallStartsCleanEpoch) {
  Tracer first;
  Tracer::install(&first);
  { Span s("one", "test"); }
  Tracer::install(nullptr);

  Tracer second;
  Tracer::install(&second);
  { Span s("two", "test"); }
  Tracer::install(nullptr);

  ASSERT_EQ(first.spans().size(), 1u);
  ASSERT_EQ(second.spans().size(), 1u);
  EXPECT_EQ(first.spans()[0].name, "one");
  EXPECT_EQ(second.spans()[0].name, "two");
}

// ---------------------------------------------------------------------------
// Determinism guard: telemetry is pure observation

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

const char* kTimerSpec =
    "%device_name t1\n%bus_type plb\n%bus_width 32\n"
    "%base_address 0x80000000\n%user_type llong, unsigned long long, 64\n"
    "void set(llong v);\nllong get();\n";

TEST(Determinism, TracingNeverChangesArtifactBytes) {
  splice::DiagnosticEngine diags_plain;
  splice::Engine plain_engine;
  auto plain = plain_engine.generate(kTimerSpec, diags_plain);
  ASSERT_TRUE(plain.has_value()) << diags_plain.render();

  // Same compile with the full observability stack on: installed tracer,
  // metrics registry, parallel workers.
  MetricsRegistry metrics;
  Tracer tracer;
  Tracer::install(&tracer);
  splice::EngineOptions options;
  options.jobs = 4;
  options.metrics = &metrics;
  splice::Engine traced_engine(splice::adapters::AdapterRegistry::instance(),
                               options);
  splice::DiagnosticEngine diags_traced;
  auto traced = traced_engine.generate(kTimerSpec, diags_traced);
  Tracer::install(nullptr);
  ASSERT_TRUE(traced.has_value()) << diags_traced.render();

  ASSERT_EQ(plain->filenames(), traced->filenames());
  for (const auto& name : plain->filenames()) {
    EXPECT_EQ(plain->find(name)->content, traced->find(name)->content)
        << name << " differs under tracing";
  }
  // The traced compile actually recorded: phases in the registry, spans in
  // the buffer — observation happened, output stayed put.
  EXPECT_FALSE(tracer.spans().empty());
  EXPECT_GE(metrics.snapshot().histograms.count("gen.parse_us"), 1u);

  // And the bytes match the checked-in goldens, not just each other.
  const fs::path golden = fs::path(SPLICE_GOLDEN_DIR) / "timer_plb_vhdl";
  ASSERT_TRUE(fs::exists(golden)) << golden;
  for (const auto& entry : fs::directory_iterator(golden)) {
    const auto* file = traced->find(entry.path().filename().string());
    ASSERT_NE(file, nullptr) << entry.path();
    EXPECT_EQ(file->content, read_file(entry.path()))
        << entry.path() << " differs under tracing";
  }
}

TEST(Determinism, PerSpecCacheStatsAreThisCallsOwnDelta) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("splice_telemetry_cache_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  MetricsRegistry metrics;
  splice::ArtifactCache cache(dir.string(), &metrics);
  splice::Engine engine;

  splice::DiagnosticEngine diags_cold;
  splice::CacheStats cold{};
  ASSERT_TRUE(engine.generate_cached(kTimerSpec, diags_cold, &cache, &cold)
                  .has_value());
  EXPECT_EQ(cold.misses, 1u);
  EXPECT_EQ(cold.stores, 1u);
  EXPECT_EQ(cold.hits, 0u);

  splice::DiagnosticEngine diags_warm;
  splice::CacheStats warm{};
  ASSERT_TRUE(engine.generate_cached(kTimerSpec, diags_warm, &cache, &warm)
                  .has_value());
  // The warm call's own outcome — not the cumulative totals.
  EXPECT_EQ(warm.hits, 1u);
  EXPECT_EQ(warm.misses, 0u);
  EXPECT_EQ(warm.stores, 0u);

  const splice::CacheStats totals = cache.stats();
  EXPECT_EQ(totals.hits, 1u);
  EXPECT_EQ(totals.misses, 1u);
  EXPECT_EQ(totals.stores, 1u);
  // The registry mirrors the totals (the single registration point).
  EXPECT_EQ(metrics.snapshot().counters.at("cache.hits"), 1u);
  EXPECT_EQ(metrics.snapshot().counters.at("cache.misses"), 1u);
  fs::remove_all(dir);
}

}  // namespace
