// The '&' by-reference extension (thesis §10.2, implemented): grammar,
// validation, driver-program shape, end-to-end read-back semantics over
// every bus, and the generated artefacts.
#include <gtest/gtest.h>

#include "core/splice.hpp"
#include "drivergen/program.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "runtime/platform.hpp"

namespace {

using namespace splice;

ir::DeviceSpec spec_from(const std::string& body,
                         const std::string& bus = "plb") {
  std::string text = "%device_name byref\n%bus_type " + bus +
                     "\n%bus_width 32\n" +
                     (bus != "fcb" ? "%base_address 0x80000000\n" : "") +
                     body;
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  EXPECT_TRUE(spec.has_value()) << diags.render();
  EXPECT_TRUE(ir::validate(*spec, diags)) << diags.render();
  return std::move(*spec);
}

TEST(ByRefGrammar, AmpersandParsesInAnyPosition) {
  ir::TypeTable types;
  DiagnosticEngine diags;
  auto pre = frontend::parse_prototype("void f(int*:4& xs);", types, diags);
  ASSERT_TRUE(pre.has_value()) << diags.render();
  EXPECT_TRUE(pre->inputs[0].by_reference);

  auto post = frontend::parse_prototype("void f(int* xs:4&);", types, diags);
  ASSERT_TRUE(post.has_value()) << diags.render();
  EXPECT_TRUE(post->inputs[0].by_reference);

  auto combo =
      frontend::parse_prototype("void f(char*:8+& xs);", types, diags);
  ASSERT_TRUE(combo.has_value()) << diags.render();
  EXPECT_TRUE(combo->inputs[0].by_reference);
  EXPECT_TRUE(combo->inputs[0].packed);
}

TEST(ByRefValidation, NeedsBoundedPointer) {
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(
      "%device_name d\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x0\nvoid f(int& x);\n",
      diags);
  ASSERT_TRUE(spec.has_value()) << diags.render();
  EXPECT_FALSE(ir::validate(*spec, diags));
  EXPECT_TRUE(diags.contains(DiagId::ByRefNeedsPointer));
}

TEST(ByRefValidation, RejectedOnNowait) {
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(
      "%device_name d\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x0\nnowait f(int*:4& xs);\n",
      diags);
  ASSERT_TRUE(spec.has_value()) << diags.render();
  EXPECT_FALSE(ir::validate(*spec, diags));
  EXPECT_TRUE(diags.contains(DiagId::ByRefWithNowait));
}

TEST(ByRefProgram, ReadBacksPrecedeTheResultRead) {
  auto spec = spec_from("int scale(int k, int*:4& xs);\n");
  drivergen::DriverBuilder b(spec, spec.functions[0]);
  auto prog = b.build_call({{3}, {1, 2, 3, 4}});
  // 4 read-back words + 1 result word.
  EXPECT_EQ(prog.total_read_words, 5u);
  // Decode slices the stream: first the parameter, then the result.
  auto decoded = b.decode_call({10, 20, 30, 40, 99}, {{3}, {1, 2, 3, 4}});
  ASSERT_EQ(decoded.byref.size(), 1u);
  EXPECT_EQ(decoded.byref[0], (std::vector<std::uint64_t>{10, 20, 30, 40}));
  EXPECT_EQ(decoded.outputs, (std::vector<std::uint64_t>{99}));
}

class ByRefOnBus : public ::testing::TestWithParam<const char*> {};

TEST_P(ByRefOnBus, HardwareUpdatesComeBack) {
  auto spec = spec_from("int scale(int k, int*:4& xs);\n", GetParam());
  elab::BehaviorMap b;
  b.set("scale", [](const elab::CallContext& ctx) {
    elab::CalcResult r;
    r.calc_cycles = 5;
    std::uint64_t sum = 0;
    std::vector<std::uint64_t> updated;
    for (std::uint64_t v : ctx.array(1)) {
      updated.push_back(v * ctx.scalar(0));
      sum += updated.back();
    }
    r.byref = {updated};
    r.outputs = {sum};
    return r;
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  auto r = vp.call("scale", {{3}, {1, 2, 3, 4}});
  ASSERT_EQ(r.byref_outputs.size(), 1u);
  EXPECT_EQ(r.byref_outputs[0], (std::vector<std::uint64_t>{3, 6, 9, 12}));
  EXPECT_EQ(r.outputs.at(0), 30u);
  EXPECT_TRUE(vp.checker().clean())
      << ::testing::PrintToString(vp.checker().violations());
}

INSTANTIATE_TEST_SUITE_P(Buses, ByRefOnBus,
                         ::testing::Values("plb", "opb", "fcb", "apb", "ahb"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(ByRefSemantics, EchoWhenBehaviourDoesNotUpdate) {
  auto spec = spec_from("void touch(int*:3& xs);\n");
  elab::BehaviorMap b;  // default stub: no byref updates -> echo
  runtime::VirtualPlatform vp(std::move(spec), b);
  auto r = vp.call("touch", {{7, 8, 9}});
  ASSERT_EQ(r.byref_outputs.size(), 1u);
  EXPECT_EQ(r.byref_outputs[0], (std::vector<std::uint64_t>{7, 8, 9}));
}

TEST(ByRefSemantics, PackedByRefRoundTrips) {
  auto spec = spec_from("void invert(char*:6+& xs);\n");
  elab::BehaviorMap b;
  b.set("invert", [](const elab::CallContext& ctx) {
    elab::CalcResult r;
    std::vector<std::uint64_t> updated;
    for (std::uint64_t v : ctx.array(0)) updated.push_back((~v) & 0xFF);
    r.byref = {updated};
    return r;
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  auto r = vp.call("invert", {{1, 2, 3, 4, 5, 6}});
  ASSERT_EQ(r.byref_outputs.size(), 1u);
  EXPECT_EQ(r.byref_outputs[0],
            (std::vector<std::uint64_t>{0xFE, 0xFD, 0xFC, 0xFB, 0xFA, 0xF9}));
}

TEST(ByRefSemantics, ImplicitBoundByRef) {
  auto spec = spec_from("void dbl(char n, int*:n& xs);\n");
  elab::BehaviorMap b;
  b.set("dbl", [](const elab::CallContext& ctx) {
    elab::CalcResult r;
    std::vector<std::uint64_t> updated;
    for (std::uint64_t v : ctx.array(1)) updated.push_back(v * 2);
    r.byref = {updated};
    return r;
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  auto r = vp.call("dbl", {{2}, {21, 43}});
  EXPECT_EQ(r.byref_outputs.at(0), (std::vector<std::uint64_t>{42, 86}));
  auto r5 = vp.call("dbl", {{5}, {1, 2, 3, 4, 5}});
  EXPECT_EQ(r5.byref_outputs.at(0),
            (std::vector<std::uint64_t>{2, 4, 6, 8, 10}));
}

TEST(ByRefArtifacts, GeneratedFilesReflectTheExtension) {
  Engine engine;
  DiagnosticEngine diags;
  auto artifacts = engine.generate(
      "%device_name brdev\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\nint scale(int k, int*:4& xs);\n",
      diags);
  ASSERT_TRUE(artifacts.has_value()) << diags.render();
  // The stub gains an OUT_xs state before OUT_RESULT.
  const std::string& stub = artifacts->find("func_scale.vhd")->content;
  EXPECT_NE(stub.find("OUT_xs"), std::string::npos);
  EXPECT_NE(stub.find("OUT_RESULT"), std::string::npos);
  // The driver reads the values back into the caller's buffer.
  const std::string& drv = artifacts->find("brdev_driver.c")->content;
  EXPECT_NE(drv.find("read the updated 'xs' values back"),
            std::string::npos);
}

}  // namespace
