// Chapter-9 evaluation tests: data correctness of all five interpolator
// interface implementations, and the qualitative shape of Figures 9.2
// (cycles) and 9.3 (resources) — who wins, by roughly what factor.
#include <gtest/gtest.h>

#include "devices/evaluation.hpp"

namespace {

using namespace splice;
using namespace splice::devices;

TEST(Evaluation, Figure91ScenarioTable) {
  const auto& table = scenarios();
  ASSERT_EQ(table.size(), 4u);
  EXPECT_EQ(table[0].set1, 2u);
  EXPECT_EQ(table[0].set2, 1u);
  EXPECT_EQ(table[0].set3, 2u);
  EXPECT_EQ(table[0].total(), 5u);
  EXPECT_EQ(table[1].total(), 10u);
  // Figure 9.1 prints a total of 16 for scenario 3, but its own set sizes
  // (8 + 3 + 6) sum to 17; we keep the set sizes and note the discrepancy.
  EXPECT_EQ(table[2].total(), 17u);
  EXPECT_EQ(table[3].total(), 28u);
}

TEST(Evaluation, InterpolationKernelIsDeterministic) {
  const auto in = make_inputs(scenarios()[1]);
  EXPECT_EQ(interpolate(in.set1, in.set2, in.set3),
            interpolate(in.set1, in.set2, in.set3));
  // Every input word influences the result (data-integrity sensitivity).
  auto mutated = in;
  mutated.set3.back() ^= 1;
  EXPECT_NE(interpolate(in.set1, in.set2, in.set3),
            interpolate(mutated.set1, mutated.set2, mutated.set3));
}

TEST(Evaluation, EmptySetsYieldZero) {
  EXPECT_EQ(interpolate({}, {5}, {1}), 0u);
  EXPECT_EQ(interpolate({1}, {}, {1}), 0u);
}

struct Case {
  Impl impl;
  unsigned scenario_index;
};

class AllRuns : public ::testing::TestWithParam<Case> {};

TEST_P(AllRuns, ProducesCorrectResult) {
  const auto [impl, idx] = std::tuple{GetParam().impl,
                                      GetParam().scenario_index};
  const ScenarioRun run = run_scenario(impl, scenarios()[idx]);
  EXPECT_TRUE(run.correct())
      << impl_name(impl) << " scenario " << idx + 1 << ": got "
      << run.result << " expected " << run.expected;
  EXPECT_GT(run.bus_cycles, 0u);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (Impl impl : kAllImpls) {
    for (unsigned i = 0; i < scenarios().size(); ++i) {
      cases.push_back({impl, i});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllRuns, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name = std::string(impl_name(info.param.impl)) + "_sc" +
                         std::to_string(info.param.scenario_index + 1);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

double avg_ratio(Impl a, Impl b) {
  double sum = 0;
  for (const auto& sc : scenarios()) {
    sum += static_cast<double>(run_scenario(a, sc).bus_cycles) /
           static_cast<double>(run_scenario(b, sc).bus_cycles);
  }
  return sum / scenarios().size();
}

TEST(Figure92Shape, CyclesGrowWithScenarioSize) {
  for (Impl impl : kAllImpls) {
    std::uint64_t prev = 0;
    for (const auto& sc : scenarios()) {
      const auto run = run_scenario(impl, sc);
      EXPECT_GT(run.bus_cycles, prev) << impl_name(impl);
      prev = run.bus_cycles;
    }
  }
}

TEST(Figure92Shape, SplicePlbBeatsNaiveByRoughlyAQuarter) {
  // §9.3.1: "approximately 25% faster than the naive hand-coded
  // implementation".
  const double r = avg_ratio(Impl::SplicePlbSimple, Impl::NaivePlb);
  EXPECT_GT(r, 0.65);
  EXPECT_LT(r, 0.85);
}

TEST(Figure92Shape, SpliceFcbBeatsNaiveByRoughlyFortyPercent) {
  // §9.3.1: "approximately 43% faster than the naive PLB implementation".
  const double r = avg_ratio(Impl::SpliceFcb, Impl::NaivePlb);
  EXPECT_GT(r, 0.50);
  EXPECT_LT(r, 0.65);
}

TEST(Figure92Shape, SpliceFcbTrailsOptimizedFcbSlightly) {
  // §9.3.1: "only 13% slower than an optimized hand-coded FCB".
  const double r = avg_ratio(Impl::SpliceFcb, Impl::OptimizedFcb);
  EXPECT_GT(r, 1.05);
  EXPECT_LT(r, 1.25);
}

TEST(Figure92Shape, DmaCrossoverBeyondFourValues) {
  // §9.2.1: DMA "does not benefit transactions of four or fewer data
  // values"; §9.3.1: only a 1-4% gain overall.  Small scenarios lose,
  // the largest wins modestly.
  const auto& sc = scenarios();
  const auto simple1 = run_scenario(Impl::SplicePlbSimple, sc[0]).bus_cycles;
  const auto dma1 = run_scenario(Impl::SplicePlbDma, sc[0]).bus_cycles;
  EXPECT_GT(dma1, simple1) << "setup cost dominates small transfers";
  const auto simple4 = run_scenario(Impl::SplicePlbSimple, sc[3]).bus_cycles;
  const auto dma4 = run_scenario(Impl::SplicePlbDma, sc[3]).bus_cycles;
  EXPECT_LT(dma4, simple4) << "DMA wins once transfers are long";
  const double gain = 1.0 - static_cast<double>(dma4) / simple4;
  EXPECT_LT(gain, 0.20) << "the win stays modest";
}

TEST(Figure93Shape, SplicePlbUsesRoughlyAQuarterLessThanNaive) {
  // §9.3.2: "about 23% less FPGA resources than the naive hand-coded
  // implementation".
  double sum = 0;
  for (const auto& sc : scenarios()) {
    sum += static_cast<double>(
               implementation_resources(Impl::SplicePlbSimple, sc).slices()) /
           implementation_resources(Impl::NaivePlb, sc).slices();
  }
  const double r = sum / scenarios().size();
  EXPECT_GT(r, 0.65);
  EXPECT_LT(r, 0.85);
}

TEST(Figure93Shape, SpliceFcbNearOptimizedFcb) {
  // §9.3.2: "only around 2% more resources than an optimized hand-coded
  // FCB interconnect".
  double sum = 0;
  for (const auto& sc : scenarios()) {
    sum += static_cast<double>(
               implementation_resources(Impl::SpliceFcb, sc).slices()) /
           implementation_resources(Impl::OptimizedFcb, sc).slices();
  }
  const double r = sum / scenarios().size();
  EXPECT_GT(r, 0.92);
  EXPECT_LT(r, 1.12);
}

TEST(Figure93Shape, DmaInflatesTheInterfaceMassively) {
  // §9.3.2: "anywhere from 57-69% more FPGA resources ... than the
  // otherwise identical simple PLB interconnect".
  for (const auto& sc : scenarios()) {
    const double r =
        static_cast<double>(
            implementation_resources(Impl::SplicePlbDma, sc).slices()) /
        implementation_resources(Impl::SplicePlbSimple, sc).slices();
    EXPECT_GT(r, 1.45);
    EXPECT_LT(r, 1.85);
  }
}

TEST(Figure93Shape, ResourceOrderingHolds) {
  for (const auto& sc : scenarios()) {
    const auto naive = implementation_resources(Impl::NaivePlb, sc).slices();
    const auto simple =
        implementation_resources(Impl::SplicePlbSimple, sc).slices();
    const auto dma =
        implementation_resources(Impl::SplicePlbDma, sc).slices();
    EXPECT_LT(simple, naive);
    EXPECT_GT(dma, naive);
  }
}

}  // namespace
