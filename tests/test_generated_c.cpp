// End-to-end check that the generated ANSI-C actually compiles: the
// driver pair plus splice_lib.h is fed to the host C compiler for every
// memory-mapped bus and for the Linux driver variant.  (The FCB library
// uses PowerPC APU inline assembly and is excluded, as it would be on any
// non-PPC host.)
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "core/splice.hpp"
#include "devices/timer.hpp"

namespace {

using namespace splice;
namespace fs = std::filesystem;

bool have_cc() { return std::system("cc --version > /dev/null 2>&1") == 0; }

/// Write artifacts to a temp dir and compile the driver .c; returns the
/// compiler's exit status.
int compile_driver(const GeneratedArtifacts& artifacts,
                   const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("splice_cc_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  for (const auto& f : artifacts.software) {
    std::ofstream out(dir / f.filename);
    out << f.content;
  }
  const std::string cmd =
      "cc -std=c99 -Wall -Werror -c " +
      (dir / (artifacts.spec.target.device_name + "_driver.c")).string() +
      " -o " + (dir / "driver.o").string() + " > " +
      (dir / "cc.log").string() + " 2>&1";
  const int rc = std::system(cmd.c_str());
  if (rc != 0) {
    std::ifstream log(dir / "cc.log");
    std::string line;
    while (std::getline(log, line)) ADD_FAILURE() << line;
  }
  fs::remove_all(dir);
  return rc;
}

class GeneratedC : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratedC, TimerDriverCompilesCleanly) {
  if (!have_cc()) GTEST_SKIP() << "no host C compiler";
  Engine engine;
  DiagnosticEngine diags;
  auto artifacts =
      engine.generate(devices::timer_spec_text(GetParam()), diags);
  ASSERT_TRUE(artifacts.has_value()) << diags.render();
  EXPECT_EQ(compile_driver(*artifacts, GetParam()), 0);
}

INSTANTIATE_TEST_SUITE_P(MappedBuses, GeneratedC,
                         ::testing::Values("plb", "opb", "apb", "ahb"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(GeneratedCExtras, ComplexDeclarationsCompile) {
  if (!have_cc()) GTEST_SKIP() << "no host C compiler";
  Engine engine;
  DiagnosticEngine diags;
  auto artifacts = engine.generate(R"(
      %device_name kitchen_sink
      %bus_type plb
      %bus_width 32
      %base_address 0x80000000
      %dma_support true
      %user_type llong, unsigned long long, 64
      int f(char n, int*:n xs, llong wide, char*:8+ packed);
      int scale(int k, int*:4& inout);
      void g(int*:16^ block);
      nowait h(int x);
      int multi(int v):4;
      int*:6 producer(char seed);
  )", diags);
  ASSERT_TRUE(artifacts.has_value()) << diags.render();
  EXPECT_EQ(compile_driver(*artifacts, "sink"), 0);
}

TEST(GeneratedCExtras, LinuxVariantCompiles) {
  if (!have_cc()) GTEST_SKIP() << "no host C compiler";
  EngineOptions options;
  options.driver_os = drivergen::DriverOs::Linux;
  Engine engine(adapters::AdapterRegistry::instance(), options);
  DiagnosticEngine diags;
  auto artifacts = engine.generate(devices::timer_spec_text(), diags);
  ASSERT_TRUE(artifacts.has_value()) << diags.render();
  EXPECT_EQ(compile_driver(*artifacts, "linux"), 0);
}

}  // namespace
