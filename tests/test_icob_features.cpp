// ICOB / generated-stub behaviour tests, driven end-to-end through the
// virtual platform: packing, splitting, implicit bounds, nowait, blocking
// void, zero-element transfers, multiple instances and user types.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "runtime/platform.hpp"

namespace {

using namespace splice;

ir::DeviceSpec spec_from(const std::string& body, const std::string& bus = "plb",
                         const std::string& extra_directives = "") {
  std::string text = "%device_name icob_dev\n%bus_type " + bus +
                     "\n%bus_width 32\n%base_address 0x80000000\n" +
                     extra_directives + body;
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  EXPECT_TRUE(spec.has_value()) << diags.render();
  EXPECT_TRUE(ir::validate(*spec, diags)) << diags.render();
  return std::move(*spec);
}

TEST(IcobFeatures, PackedCharsReassembleInOrder) {
  // 6 chars over a 32-bit bus: 2 packed words; the ICOB must unpack
  // low-order lanes first and ignore the 2 trailing lanes (§5.3.1).
  auto spec = spec_from("int sum(char*:6+ x);\n");
  elab::BehaviorMap b;
  std::vector<std::uint64_t> seen;
  b.set("sum", [&seen](const elab::CallContext& ctx) {
    seen = ctx.array(0);
    std::uint64_t s = 0;
    for (auto v : ctx.array(0)) s += v;
    return elab::CalcResult{1, {s}};
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  auto r = vp.call("sum", {{10, 20, 30, 40, 50, 60}});
  EXPECT_EQ(r.outputs.at(0), 210u);
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{10, 20, 30, 40, 50, 60}));
  // Packing must actually reduce the bus traffic: 6 chars -> 2 words.
  EXPECT_TRUE(vp.checker().clean());
  EXPECT_EQ(vp.checker().writes_observed(), 2u);
}

TEST(IcobFeatures, SplitDoublesReassembleMswFirst) {
  auto spec = spec_from("%user_type llong, unsigned long long, 64\n"
                        "int low_word(llong v);\n");
  elab::BehaviorMap b;
  std::uint64_t captured = 0;
  b.set("low_word", [&captured](const elab::CallContext& ctx) {
    captured = ctx.scalar(0);
    return elab::CalcResult{1, {captured & 0xFFFFFFFFull}};
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  const std::uint64_t value = 0x0123456789ABCDEFull;
  auto r = vp.call("low_word", {{value}});
  EXPECT_EQ(captured, value);  // both halves arrived, MSW first
  EXPECT_EQ(r.outputs.at(0), 0x89ABCDEFull);
  EXPECT_EQ(vp.checker().writes_observed(), 2u);  // one 64-bit split write
}

TEST(IcobFeatures, SplitReturnValueRoundTrips) {
  auto spec = spec_from("%user_type llong, unsigned long long, 64\n"
                        "llong echo64(int hi, int lo);\n");
  elab::BehaviorMap b;
  b.set("echo64", [](const elab::CallContext& ctx) {
    return elab::CalcResult{1, {(ctx.scalar(0) << 32) | ctx.scalar(1)}};
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  auto r = vp.call("echo64", {{0xDEAD}, {0xBEEF}});
  EXPECT_EQ(r.outputs.at(0), 0x0000DEAD0000BEEFull);
}

TEST(IcobFeatures, ImplicitCountOfZeroSkipsParameter) {
  auto spec = spec_from("int count(char n, int*:n xs, int tail);\n");
  elab::BehaviorMap b;
  b.set("count", [](const elab::CallContext& ctx) {
    return elab::CalcResult{
        1, {ctx.array(1).size() * 100 + ctx.scalar(2)}};
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  auto r = vp.call("count", {{0}, {}, {7}});
  EXPECT_EQ(r.outputs.at(0), 7u);  // zero array elements, tail delivered
  auto r2 = vp.call("count", {{3}, {1, 2, 3}, {9}});
  EXPECT_EQ(r2.outputs.at(0), 309u);
}

TEST(IcobFeatures, NowaitReturnsWithoutRead) {
  auto spec = spec_from("nowait fire(int x);\nint probe();\n");
  elab::BehaviorMap b;
  std::uint64_t stored = 0;
  b.set("fire", [&stored](const elab::CallContext& ctx) {
    stored = ctx.scalar(0);
    return elab::CalcResult{5, {}};
  });
  b.set("probe", [&stored](const elab::CallContext&) {
    return elab::CalcResult{1, {stored}};
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  auto r = vp.call("fire", {{42}});
  EXPECT_TRUE(r.outputs.empty());
  // A nowait call performs no read transactions at all.
  EXPECT_EQ(vp.checker().reads_observed(), 0u);
  // Give the calculation time to land, then observe its side effect.
  vp.sim().step(16);
  auto r2 = vp.call("probe");
  EXPECT_EQ(r2.outputs.at(0), 42u);
}

TEST(IcobFeatures, BlockingVoidSynchronizesOnPseudoOutput) {
  auto spec = spec_from("void configure(int x);\n");
  elab::BehaviorMap b;
  bool side_effect = false;
  b.set("configure", [&side_effect](const elab::CallContext&) {
    side_effect = true;
    return elab::CalcResult{20, {}};
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  auto r = vp.call("configure", {{1}});
  EXPECT_TRUE(r.outputs.empty());
  EXPECT_TRUE(side_effect);
  // The driver performed the synchronizing pseudo-output read and the run
  // must span at least the 20 calculation cycles.
  EXPECT_EQ(vp.checker().reads_observed(), 1u);
  EXPECT_GE(r.bus_cycles, 20u);
}

TEST(IcobFeatures, MultipleInstancesKeepIndependentState) {
  auto spec = spec_from("int acc(int x):3;\n");
  elab::BehaviorMap b;
  // Per-instance accumulators, addressed by the instance index (§3.1.6).
  auto sums = std::make_shared<std::array<std::uint64_t, 3>>();
  b.set("acc", [sums](const elab::CallContext& ctx) {
    (*sums)[ctx.instance_index] += ctx.scalar(0);
    return elab::CalcResult{1, {(*sums)[ctx.instance_index]}};
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  EXPECT_EQ(vp.call("acc", {{10}}, 0).outputs.at(0), 10u);
  EXPECT_EQ(vp.call("acc", {{5}}, 1).outputs.at(0), 5u);
  EXPECT_EQ(vp.call("acc", {{1}}, 0).outputs.at(0), 11u);
  EXPECT_EQ(vp.call("acc", {{2}}, 2).outputs.at(0), 2u);
  EXPECT_EQ(vp.call("acc", {{3}}, 1).outputs.at(0), 8u);
  EXPECT_TRUE(vp.checker().clean());
}

TEST(IcobFeatures, InstanceIndexOutOfRangeThrows) {
  auto spec = spec_from("int acc(int x):2;\n");
  runtime::VirtualPlatform vp(std::move(spec), {});
  EXPECT_THROW(vp.call("acc", {{1}}, 2), SpliceError);
}

TEST(IcobFeatures, ArrayOutputStreamsAllWords) {
  auto spec = spec_from("int*:4 quad(int seed);\n");
  elab::BehaviorMap b;
  b.set("quad", [](const elab::CallContext& ctx) {
    const std::uint64_t s = ctx.scalar(0);
    return elab::CalcResult{1, {s, s + 1, s + 2, s + 3}};
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  auto r = vp.call("quad", {{100}});
  EXPECT_EQ(r.outputs,
            (std::vector<std::uint64_t>{100, 101, 102, 103}));
}

TEST(IcobFeatures, ImplicitOutputLengthFollowsArgument) {
  auto spec = spec_from("int*:n repeat(char n, int v);\n");
  elab::BehaviorMap b;
  b.set("repeat", [](const elab::CallContext& ctx) {
    return elab::CalcResult{
        1, std::vector<std::uint64_t>(ctx.scalar(0), ctx.scalar(1))};
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  EXPECT_EQ(vp.call("repeat", {{3}, {9}}).outputs.size(), 3u);
  EXPECT_EQ(vp.call("repeat", {{1}, {9}}).outputs.size(), 1u);
}

TEST(IcobFeatures, StubIntrospectionMatchesDeclaration) {
  auto spec = spec_from("int f(int a, char*:4+ b);\nnowait g(int x);\n");
  runtime::VirtualPlatform vp(std::move(spec), {});
  auto* f = vp.device().stub("f");
  ASSERT_NE(f, nullptr);
  // Two input states + calc + output.
  EXPECT_EQ(f->state_count(), 4u);
  auto* g = vp.device().stub("g");
  ASSERT_NE(g, nullptr);
  // nowait: input + calc only.
  EXPECT_EQ(g->state_count(), 2u);
  EXPECT_EQ(vp.device().func_id("f"), 1u);
  EXPECT_EQ(vp.device().func_id("g"), 2u);
  EXPECT_THROW(vp.device().func_id("missing"), SpliceError);
}

TEST(IcobFeatures, PackedArrayMultiInstanceRoundTrips) {
  // Feature combination from the fuzzer's weight table: lane packing and
  // multiple instances interact (each instance unpacks its own stream).
  auto spec = spec_from("int sum(char*:6+ xs):2;\n");
  elab::BehaviorMap b;
  b.set("sum", [](const elab::CallContext& ctx) {
    std::uint64_t s = ctx.instance_index * 1000;
    for (auto v : ctx.array(0)) s += v;
    return elab::CalcResult{1, {s}};
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  EXPECT_EQ(vp.call("sum", {{1, 2, 3, 4, 5, 6}}, 0).outputs.at(0), 21u);
  EXPECT_EQ(vp.call("sum", {{6, 5, 4, 3, 2, 1}}, 1).outputs.at(0), 1021u);
  EXPECT_TRUE(vp.checker().clean());
}

TEST(IcobFeatures, ImplicitPointerNowaitEnacts) {
  // Implicit bound + nowait: the final element of the variable-length
  // stream enacts the calculation; nothing is ever read back.
  auto spec = spec_from("nowait push(char n, int*:n xs);\nint last();\n");
  elab::BehaviorMap b;
  auto seen = std::make_shared<std::vector<std::uint64_t>>();
  b.set("push", [seen](const elab::CallContext& ctx) {
    *seen = ctx.array(1);
    return elab::CalcResult{1, {}};
  });
  b.set("last", [seen](const elab::CallContext&) {
    return elab::CalcResult{1, {seen->empty() ? 0 : seen->back()}};
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  auto r = vp.call("push", {{3}, {7, 8, 9}});
  EXPECT_TRUE(r.outputs.empty());
  EXPECT_EQ(vp.checker().reads_observed(), 0u);
  vp.sim().step(32);
  EXPECT_EQ(*seen, (std::vector<std::uint64_t>{7, 8, 9}));
  EXPECT_EQ(vp.call("last").outputs.at(0), 9u);
  EXPECT_TRUE(vp.checker().clean());
}

TEST(IcobFeatures, AhbDmaRoundTrips) {
  // Fuzzer regression (seed 1, spec 14): %dma_support on the AHB threw
  // "this bus has no DMA capability" at the first '^' transfer — the
  // adapter advertised DMA but the bus model never grew an engine.
  auto spec = spec_from("int sum(int*:8^ xs);\n", "ahb",
                        "%dma_support true\n");
  elab::BehaviorMap b;
  b.set("sum", [](const elab::CallContext& ctx) {
    std::uint64_t s = 0;
    for (auto v : ctx.array(0)) s += v;
    return elab::CalcResult{1, {s}};
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  auto r = vp.call("sum", {{1, 2, 3, 4, 5, 6, 7, 8}});
  EXPECT_EQ(r.outputs.at(0), 36u);
  EXPECT_TRUE(vp.checker().clean())
      << ::testing::PrintToString(vp.checker().violations());
}

TEST(IcobFeatures, AhbDmaWriteVoidCompletes) {
  // The minimized fuzzer repro itself: blocking void, single-element DMA.
  auto spec = spec_from("void f(int*:1^ x);\n", "ahb", "%dma_support true\n");
  elab::BehaviorMap b;
  std::uint64_t got = 0;
  b.set("f", [&got](const elab::CallContext& ctx) {
    got = ctx.array(0).at(0);
    return elab::CalcResult{1, {}};
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  auto r = vp.call("f", {{0xABCD}});
  EXPECT_TRUE(r.outputs.empty());
  EXPECT_EQ(got, 0xABCDu);
  EXPECT_TRUE(vp.checker().clean());
}

TEST(IcobFeatures, ActivationCountsAdvance) {
  auto spec = spec_from("int inc(int x);\n");
  elab::BehaviorMap b;
  b.set("inc", [](const elab::CallContext& ctx) {
    return elab::CalcResult{1, {ctx.scalar(0) + 1}};
  });
  runtime::VirtualPlatform vp(std::move(spec), b);
  auto* stub = vp.device().stub("inc");
  ASSERT_NE(stub, nullptr);
  EXPECT_EQ(stub->activations(), 0u);
  vp.call("inc", {{1}});
  vp.call("inc", {{2}});
  EXPECT_EQ(stub->activations(), 2u);
}

}  // namespace
