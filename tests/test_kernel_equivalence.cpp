// Trace equivalence between the two settle schedulers: every example
// device runs the same driver-call script under the legacy full-pass fix
// point and the event-driven (sensitivity-tracked) scheduler, and the
// per-cycle value history of EVERY signal must be bit-identical, along
// with the decoded outputs and the exact bus-cycle counts.  This guards
// the sensitivity migration: an adapter or arbiter with an incomplete
// watch list shows up here as a diverging trace.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "devices/timer.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "rtl/trace.hpp"
#include "runtime/platform.hpp"

namespace {

using namespace splice;
using rtl::Simulator;

struct Call {
  std::string fn;
  drivergen::CallArgs args{};
  std::uint32_t instance = 0;
};

struct KernelRun {
  std::vector<std::string> names;
  std::vector<std::vector<std::uint64_t>> histories;
  std::vector<std::vector<std::uint64_t>> outputs;
  std::vector<std::uint64_t> bus_cycles;
  Simulator::Stats stats;
};

KernelRun drive(runtime::VirtualPlatform& vp, Simulator::SettleMode mode,
                const std::vector<Call>& script) {
  vp.sim().set_settle_mode(mode);
  rtl::Trace trace(vp.sim());
  KernelRun run;
  for (const auto& s : vp.sim().signals()) {
    run.names.push_back(s.name());
    trace.watch(s.name());
  }
  for (const auto& c : script) {
    auto r = vp.call(c.fn, c.args, c.instance);
    run.outputs.push_back(r.outputs);
    run.bus_cycles.push_back(r.bus_cycles);
  }
  for (const auto& name : run.names) {
    run.histories.push_back(trace.history(name));
  }
  run.stats = vp.sim().stats();
  EXPECT_TRUE(vp.checker().clean()) << vp.checker().violations().front();
  return run;
}

void expect_identical(const KernelRun& legacy, const KernelRun& event) {
  ASSERT_EQ(legacy.names, event.names);
  EXPECT_EQ(legacy.outputs, event.outputs);
  EXPECT_EQ(legacy.bus_cycles, event.bus_cycles);
  for (std::size_t i = 0; i < legacy.names.size(); ++i) {
    EXPECT_EQ(legacy.histories[i], event.histories[i])
        << "signal '" << legacy.names[i] << "' diverged between kernels";
  }
  // The whole point of the migration: the event-driven run must do
  // strictly less combinational work than the full-pass run.
  EXPECT_LT(event.stats.evals, legacy.stats.evals);
}

// -- hw_timer (chapter 8) on every supported bus ----------------------------

std::vector<Call> timer_script() {
  return {
      {"enable"},
      {"set_threshold", {{25}}},
      {"get_threshold"},
      {"get_snapshot"},
      {"get_status"},
      {"get_snapshot"},
      {"get_clock"},
      {"disable"},
      {"get_status"},
  };
}

KernelRun run_timer(const std::string& bus, Simulator::SettleMode mode) {
  devices::TimerCore core;
  runtime::VirtualPlatform vp(devices::make_timer_spec(bus),
                              devices::make_timer_behaviors(core));
  vp.sim().add<devices::TimerTick>(core);
  return drive(vp, mode, timer_script());
}

class TimerKernelEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(TimerKernelEquivalence, TracesMatchAcrossSchedulers) {
  const std::string bus = GetParam();
  expect_identical(run_timer(bus, Simulator::SettleMode::kFullPass),
                   run_timer(bus, Simulator::SettleMode::kEventDriven));
}

INSTANTIATE_TEST_SUITE_P(AllBuses, TimerKernelEquivalence,
                         ::testing::Values("plb", "opb", "apb", "ahb", "fcb"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// -- generic spec devices (arrays, packing, splits, multi-instance) ---------

ir::DeviceSpec parse(const std::string& text) {
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  if (!spec || !ir::validate(*spec, diags)) {
    throw SpliceError("equivalence spec failed:\n" + diags.render());
  }
  return *spec;
}

KernelRun run_spec(const std::string& text, elab::BehaviorMap behaviors,
                   const std::vector<Call>& script,
                   Simulator::SettleMode mode) {
  runtime::VirtualPlatform vp(parse(text), std::move(behaviors));
  return drive(vp, mode, script);
}

TEST(KernelEquivalence, MultiInstanceDevice) {
  const std::string text =
      "%device_name eq_multi\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80000000\n"
      "int crunch(int x):3;\n";
  elab::BehaviorMap b;
  b.set("crunch", [](const elab::CallContext& ctx) {
    return elab::CalcResult(4, {ctx.scalar(0) * 3 + ctx.instance_index});
  });
  const std::vector<Call> script = {
      {"crunch", {{7}}, 0},
      {"crunch", {{9}}, 1},
      {"crunch", {{11}}, 2},
      {"crunch", {{13}}, 0},
  };
  expect_identical(
      run_spec(text, b, script, Simulator::SettleMode::kFullPass),
      run_spec(text, b, script, Simulator::SettleMode::kEventDriven));
}

TEST(KernelEquivalence, ArrayAndPackedTransfers) {
  const std::string text =
      "%device_name eq_arrays\n%bus_type fcb\n%bus_width 32\n"
      "%user_type uchar, unsigned char, 8\n"
      "%user_type llong, long long, 64\n"
      "int sum(int n, int*:n vals, uchar*:4+ tag, llong seed);\n";
  elab::BehaviorMap b;
  b.set("sum", [](const elab::CallContext& ctx) {
    std::uint64_t acc = ctx.scalar(3);
    for (std::uint64_t v : ctx.array(1)) acc += v;
    for (std::uint64_t t : ctx.array(2)) acc += t;
    return elab::CalcResult(6, {acc & 0xFFFFFFFFu});
  });
  const std::vector<Call> script = {
      {"sum", {{3}, {10, 20, 30}, {1, 2, 3, 4}, {0x1234}}},
      {"sum", {{5}, {1, 2, 3, 4, 5}, {9, 9, 9, 9}, {0xFFFF0001}}},
  };
  expect_identical(
      run_spec(text, b, script, Simulator::SettleMode::kFullPass),
      run_spec(text, b, script, Simulator::SettleMode::kEventDriven));
}

TEST(KernelEquivalence, StrictlySynchronousApbDevice) {
  const std::string text =
      "%device_name eq_apb\n%bus_type apb\n%bus_width 32\n"
      "int scale(int x);\n"
      "int get_status();\n";
  elab::BehaviorMap b;
  b.set("scale", [](const elab::CallContext& ctx) {
    return elab::CalcResult(3, {ctx.scalar(0) << 1});
  });
  b.set("get_status", [](const elab::CallContext&) {
    return elab::CalcResult(1, {0xA5u});
  });
  const std::vector<Call> script = {
      {"scale", {{21}}},
      {"get_status"},
      {"scale", {{1000}}},
  };
  expect_identical(
      run_spec(text, b, script, Simulator::SettleMode::kFullPass),
      run_spec(text, b, script, Simulator::SettleMode::kEventDriven));
}

}  // namespace
