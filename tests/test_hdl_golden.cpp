// Golden-file snapshots of every generated hardware file, byte for byte.
// The fixtures under tests/golden/ were captured from the pre-AST string
// emitters; they pin the exact output so refactors of the generation
// pipeline (builder/printer splits, template changes) are provably
// output-preserving.
//
// To regenerate after an intentional output change:
//   SPLICE_UPDATE_GOLDEN=1 ctest -R HdlGolden
// then review the diff of tests/golden/ like any other code change.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "core/splice.hpp"

namespace {

namespace fs = std::filesystem;

using namespace splice;

#ifndef SPLICE_GOLDEN_DIR
#define SPLICE_GOLDEN_DIR "tests/golden"
#endif

// Same corpus as test_hdl_sanity.cpp: every extension and every bus.
struct Corpus {
  const char* name;
  const char* spec;
};

const Corpus kCorpus[] = {
    {"timer_plb",
     "%device_name t1\n%bus_type plb\n%bus_width 32\n"
     "%base_address 0x80000000\n%user_type llong, unsigned long long, 64\n"
     "void set(llong v);\nllong get();\n"},
    {"arrays_fcb",
     "%device_name t2\n%bus_type fcb\n%bus_width 32\n%burst_support true\n"
     "int sum(char n, int*:n xs);\nvoid fill(char*:16+ data);\n"},
    {"dma_plb",
     "%device_name t3\n%bus_type plb\n%bus_width 32\n"
     "%base_address 0x80000000\n%dma_support true\n"
     "void burst(int*:32^ block);\n"},
    {"multi_apb",
     "%device_name t4\n%bus_type apb\n%bus_width 32\n"
     "%base_address 0x80000000\nint work(int x):5;\nnowait kick(int v);\n"},
    {"byref_irq_ahb",
     "%device_name t5\n%bus_type ahb\n%bus_width 32\n"
     "%base_address 0x80000000\n%irq_support true\n"
     "int scale(int k, int*:4& xs);\n"},
    {"wide_opb",
     "%device_name t6\n%bus_type opb\n%bus_width 32\n"
     "%base_address 0x80000000\nint a();\nint b();\nint c();\nint d();\n"},
};

bool update_mode() { return std::getenv("SPLICE_UPDATE_GOLDEN") != nullptr; }

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void check_case(const Corpus& c, bool verilog) {
  Engine engine;
  DiagnosticEngine diags;
  std::string spec = c.spec;
  if (verilog) spec += "%target_hdl verilog\n";
  auto artifacts = engine.generate(spec, diags);
  ASSERT_TRUE(artifacts.has_value()) << diags.render();

  const fs::path dir = fs::path(SPLICE_GOLDEN_DIR) /
                       (std::string(c.name) + (verilog ? "_verilog" : "_vhdl"));
  if (update_mode()) {
    fs::create_directories(dir);
    for (const auto& f : artifacts->hardware) {
      std::ofstream out(dir / f.filename, std::ios::binary);
      out << f.content;
    }
    // Drop fixtures for files the generator no longer produces.
    std::set<std::string> produced;
    for (const auto& f : artifacts->hardware) produced.insert(f.filename);
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (!produced.count(entry.path().filename().string())) {
        fs::remove(entry.path());
      }
    }
    return;
  }

  ASSERT_TRUE(fs::exists(dir))
      << dir << " missing; run with SPLICE_UPDATE_GOLDEN=1 to create it";
  // The emitted file set must match the fixture set exactly...
  std::set<std::string> produced;
  for (const auto& f : artifacts->hardware) produced.insert(f.filename);
  std::set<std::string> expected;
  for (const auto& entry : fs::directory_iterator(dir)) {
    expected.insert(entry.path().filename().string());
  }
  EXPECT_EQ(produced, expected) << "hardware file set changed";
  // ...and every file must match byte for byte.
  for (const auto& f : artifacts->hardware) {
    const fs::path golden = dir / f.filename;
    if (!fs::exists(golden)) continue;  // already reported by the set check
    EXPECT_EQ(f.content, read_file(golden))
        << f.filename << " drifted from " << golden
        << " (SPLICE_UPDATE_GOLDEN=1 regenerates after review)";
  }
}

class HdlGolden : public ::testing::TestWithParam<Corpus> {};

TEST_P(HdlGolden, VhdlMatchesFixtures) { check_case(GetParam(), false); }

TEST_P(HdlGolden, VerilogMatchesFixtures) { check_case(GetParam(), true); }

INSTANTIATE_TEST_SUITE_P(Corpus, HdlGolden, ::testing::ValuesIn(kCorpus),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// --- specs/corpus: minimized fuzzer repros + representative feature mixes --
//
// Each .splice under specs/corpus/ is snapshotted the same way, under
// tests/golden/corpus_<stem>_{vhdl,verilog}.  A fuzzer-minimized repro that
// led to a fix gets committed there, so the exact generated hardware stays
// pinned for the failure class it represents.

#ifdef SPLICE_SPEC_CORPUS_DIR

std::vector<Corpus> corpus_dir_specs() {
  // gtest may evaluate the parameter generator more than once; a deque
  // keeps earlier c_str() pointers stable across later growth.
  static std::deque<std::string> storage;
  std::vector<Corpus> out;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(SPLICE_SPEC_CORPUS_DIR)) {
    if (entry.path().extension() == ".splice") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& p : files) {
    storage.push_back("corpus_" + p.stem().string());
    const char* name = storage.back().c_str();
    storage.push_back(read_file(p));
    out.push_back({name, storage.back().c_str()});
  }
  return out;
}

class CorpusGolden : public ::testing::TestWithParam<Corpus> {};

TEST_P(CorpusGolden, VhdlMatchesFixtures) { check_case(GetParam(), false); }

TEST_P(CorpusGolden, VerilogMatchesFixtures) { check_case(GetParam(), true); }

INSTANTIATE_TEST_SUITE_P(SpecsCorpus, CorpusGolden,
                         ::testing::ValuesIn(corpus_dir_specs()),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

#endif  // SPLICE_SPEC_CORPUS_DIR

}  // namespace
