// Bus protocol-model tests: pin-level transaction shapes, relative
// latencies (OPB bridge > PLB; FCB < PLB), burst splitting, and the DMA
// cost structure of §9.2.1.
#include <gtest/gtest.h>

#include "bus/ahb.hpp"
#include "bus/apb.hpp"
#include "bus/fcb.hpp"
#include "bus/opb.hpp"
#include "bus/plb.hpp"

namespace {

using namespace splice;
using namespace splice::bus;

/// Minimal always-ready PLB slave: acknowledges every request on the next
/// cycle and echoes written data back on reads.
class EchoPlbSlave : public rtl::Module {
 public:
  explicit EchoPlbSlave(PlbPins& pins)
      : rtl::Module("echo_slave"), pins_(pins) {}
  void clock_edge() override {
    pins_.wr_ack.set(false);
    pins_.rd_ack.set(false);
    if (pins_.wr_req.high() && pins_.wr_ce.get() != 0) {
      last_written = pins_.wr_data.get();
      last_wr_slot = pins_.wr_ce.get();
      ++writes;
      pins_.wr_ack.set(true);
    }
    if (pins_.rd_req.high() && pins_.rd_ce.get() != 0) {
      pins_.rd_data.set(last_written);
      pins_.rd_ack.set(true);
      ++reads;
    }
  }
  PlbPins& pins_;
  std::uint64_t last_written = 0;
  std::uint64_t last_wr_slot = 0;
  unsigned writes = 0;
  unsigned reads = 0;
};

std::uint64_t run_until_idle(rtl::Simulator& sim, MasterPort& port) {
  const std::uint64_t start = sim.cycle();
  EXPECT_TRUE(sim.step_until([&] { return !port.busy(); }, 10'000));
  return sim.cycle() - start;
}

TEST(PlbModel, SingleWriteReachesSlaveWithOneHotCe) {
  rtl::Simulator sim;
  auto& plb = sim.add<PlbBus>(sim, "PLB_", 32, 4);
  auto& slave = sim.add<EchoPlbSlave>(plb.pins());
  plb.write(2, {0xCAFE});
  run_until_idle(sim, plb);
  EXPECT_EQ(slave.last_written, 0xCAFEu);
  EXPECT_EQ(slave.last_wr_slot, 1u << 2);
  EXPECT_EQ(plb.transactions(), 1u);
}

TEST(PlbModel, ReadReturnsSlaveData) {
  rtl::Simulator sim;
  auto& plb = sim.add<PlbBus>(sim, "PLB_", 32, 4);
  sim.add<EchoPlbSlave>(plb.pins());
  plb.write(1, {0x1234});
  plb.read(1, 1);
  run_until_idle(sim, plb);
  ASSERT_EQ(plb.read_data().size(), 1u);
  EXPECT_EQ(plb.read_data()[0], 0x1234u);
}

TEST(PlbModel, MultiWordWritesSerializeIntoTransactions) {
  // The PPC-405 cannot burst on the PLB (§2.3.2), so each word is its own
  // transaction.
  rtl::Simulator sim;
  auto& plb = sim.add<PlbBus>(sim, "PLB_", 32, 2);
  auto& slave = sim.add<EchoPlbSlave>(plb.pins());
  plb.write(1, {1, 2, 3, 4});
  run_until_idle(sim, plb);
  EXPECT_EQ(slave.writes, 4u);
  EXPECT_EQ(plb.transactions(), 4u);
}

TEST(PlbModel, BadSlotCountRejected) {
  rtl::Simulator sim;
  EXPECT_THROW(PlbBus(sim, "X_", 32, 0), SpliceError);
  EXPECT_THROW(PlbBus(sim, "Y_", 32, 65), SpliceError);
}

TEST(PlbModel, DmaRequiresEnable) {
  rtl::Simulator sim;
  auto& plb = sim.add<PlbBus>(sim, "PLB_", 32, 2);
  EXPECT_THROW(plb.dma_write(1, {1, 2}), SpliceError);
  EXPECT_FALSE(plb.supports_dma());
  plb.enable_dma();
  EXPECT_TRUE(plb.supports_dma());
}

TEST(PlbModel, DmaStreamsWordsAndPaysSetupTeardown) {
  rtl::Simulator sim;
  auto& plb = sim.add<PlbBus>(sim, "PLB_", 32, 2);
  plb.enable_dma();
  auto& slave = sim.add<EchoPlbSlave>(plb.pins());
  plb.dma_write(1, {10, 20, 30});
  run_until_idle(sim, plb);
  EXPECT_EQ(slave.writes, 3u);
  // 3 streamed + 3 setup + 1 teardown transactions (§9.2.1).
  EXPECT_EQ(plb.transactions(), 7u);
  EXPECT_EQ(slave.last_written, 30u);
}

TEST(OpbModel, BridgePenaltyMakesOpbSlowerThanPlb) {
  rtl::Simulator sim_plb;
  auto& plb = sim_plb.add<PlbBus>(sim_plb, "PLB_", 32, 2);
  sim_plb.add<EchoPlbSlave>(plb.pins());
  plb.write(1, {1});
  const std::uint64_t plb_cycles = run_until_idle(sim_plb, plb);

  rtl::Simulator sim_opb;
  auto& opb = sim_opb.add<OpbBus>(sim_opb, "OPB_", 32, 2);
  sim_opb.add<EchoPlbSlave>(opb.pins());
  opb.write(1, {1});
  const std::uint64_t opb_cycles = run_until_idle(sim_opb, opb);

  EXPECT_GT(opb_cycles, plb_cycles);
}

/// Streaming FCB slave: accepts a beat per cycle.
class StreamFcbSlave : public rtl::Module {
 public:
  explicit StreamFcbSlave(FcbPins& pins)
      : rtl::Module("fcb_slave"), pins_(pins) {}
  void eval_comb() override {
    pins_.beat_ack.drive(pins_.wr_valid.high());
    pins_.rd_data.drive(std::uint64_t{0x77});
    pins_.rd_valid.drive(read_pending_);
  }
  void clock_edge() override {
    if (pins_.op_valid.high() && pins_.op_read.high()) {
      beats_to_read_ = static_cast<unsigned>(pins_.op_beats.get());
    }
    read_pending_ = beats_to_read_ > 0;
    if (read_pending_) --beats_to_read_;
    if (pins_.wr_valid.high()) received.push_back(pins_.wr_data.get());
  }
  FcbPins& pins_;
  std::vector<std::uint64_t> received;
  unsigned beats_to_read_ = 0;
  bool read_pending_ = false;
};

TEST(FcbModel, QuadBurstDeliversAllBeatsInOrder) {
  rtl::Simulator sim;
  auto& fcb = sim.add<FcbBus>(sim, "FCB_", 32, 4);
  auto& slave = sim.add<StreamFcbSlave>(fcb.pins());
  fcb.write(1, {5, 6, 7, 8});
  run_until_idle(sim, fcb);
  // The master holds each beat until acked; the streaming slave may sample
  // a held beat more than once, but the distinct sequence must be in order.
  std::vector<std::uint64_t> distinct;
  for (std::uint64_t v : slave.received) {
    if (distinct.empty() || distinct.back() != v) distinct.push_back(v);
  }
  EXPECT_EQ(distinct, (std::vector<std::uint64_t>{5, 6, 7, 8}));
  EXPECT_EQ(fcb.operations(), 1u);  // one quad operation
}

TEST(FcbModel, SevenWordsSplitIntoQuadDoubleSingle) {
  rtl::Simulator sim;
  auto& fcb = sim.add<FcbBus>(sim, "FCB_", 32, 4);
  sim.add<StreamFcbSlave>(fcb.pins());
  fcb.write(1, {1, 2, 3, 4, 5, 6, 7});
  run_until_idle(sim, fcb);
  EXPECT_EQ(fcb.operations(), 3u);  // quad + double + single
  EXPECT_EQ(fcb.max_burst_beats(), 4u);
}

TEST(FcbModel, FcbFasterThanPlbForSameWordCount) {
  rtl::Simulator sim_plb;
  auto& plb = sim_plb.add<PlbBus>(sim_plb, "PLB_", 32, 2);
  sim_plb.add<EchoPlbSlave>(plb.pins());
  plb.write(1, {1, 2, 3, 4, 5, 6, 7, 8});
  const auto plb_cycles = run_until_idle(sim_plb, plb);

  rtl::Simulator sim_fcb;
  auto& fcb = sim_fcb.add<FcbBus>(sim_fcb, "FCB_", 32, 4);
  sim_fcb.add<StreamFcbSlave>(fcb.pins());
  fcb.write(1, {1, 2, 3, 4, 5, 6, 7, 8});
  const auto fcb_cycles = run_until_idle(sim_fcb, fcb);

  EXPECT_LT(fcb_cycles, plb_cycles);
}

/// Combinational APB register slave.
class RegApbSlave : public rtl::Module {
 public:
  explicit RegApbSlave(ApbPins& pins)
      : rtl::Module("apb_slave"), pins_(pins) {}
  void eval_comb() override {
    pins_.prdata.drive(reg_);
  }
  void clock_edge() override {
    if (pins_.psel.high() && pins_.penable.high() && pins_.pwrite.high()) {
      reg_ = pins_.pwdata.get();
      ++writes;
    }
  }
  ApbPins& pins_;
  std::uint64_t reg_ = 0;
  unsigned writes = 0;
};

TEST(ApbModel, WriteThenReadRoundTrips) {
  rtl::Simulator sim;
  auto& apb = sim.add<ApbBus>(sim, "APB_", 32, 4);
  auto& slave = sim.add<RegApbSlave>(apb.pins());
  apb.write(1, {0xA5A5});
  apb.read(1, 1);
  run_until_idle(sim, apb);
  EXPECT_EQ(slave.writes, 1u);
  ASSERT_EQ(apb.read_data().size(), 1u);
  EXPECT_EQ(apb.read_data()[0], 0xA5A5u);
}

TEST(ApbModel, FixedTransactionLatency) {
  // Strictly synchronous: every transfer takes the same number of cycles.
  rtl::Simulator sim;
  auto& apb = sim.add<ApbBus>(sim, "APB_", 32, 4);
  sim.add<RegApbSlave>(apb.pins());
  apb.write(1, {1});
  const auto first = run_until_idle(sim, apb);
  apb.write(1, {2});
  const auto second = run_until_idle(sim, apb);
  EXPECT_EQ(first, second);
}

/// AHB slave with configurable wait states per beat.
class WaitAhbSlave : public rtl::Module {
 public:
  WaitAhbSlave(AhbPins& pins, unsigned wait_states)
      : rtl::Module("ahb_slave"), pins_(pins), wait_(wait_states) {}
  void eval_comb() override {
    pins_.hready.drive(!data_phase_ || countdown_ == 0);
    pins_.hrdata.drive(std::uint64_t{0x42});
  }
  void clock_edge() override {
    if (data_phase_ && countdown_ == 0) {
      if (write_) received.push_back(pins_.hwdata.get());
      ++beats;
      data_phase_ = false;
    } else if (data_phase_) {
      --countdown_;
    }
    if (!data_phase_) {
      const auto htrans = pins_.htrans.get();
      if (htrans == kHtransNonseq || htrans == kHtransSeq) {
        data_phase_ = true;
        write_ = pins_.hwrite.high();
        countdown_ = wait_;
      }
    }
  }
  AhbPins& pins_;
  unsigned wait_;
  bool data_phase_ = false;
  bool write_ = false;
  unsigned countdown_ = 0;
  unsigned beats = 0;
  std::vector<std::uint64_t> received;
};

TEST(AhbModel, PipelinedBurstDeliversAllBeats) {
  rtl::Simulator sim;
  auto& ahb = sim.add<AhbBus>(sim, "AHB_", 32, 4);
  auto& slave = sim.add<WaitAhbSlave>(ahb.pins(), 0);
  ahb.write(1, {9, 8, 7, 6, 5});
  run_until_idle(sim, ahb);
  EXPECT_EQ(slave.received, (std::vector<std::uint64_t>{9, 8, 7, 6, 5}));
  EXPECT_EQ(ahb.bursts(), 1u);
}

TEST(AhbModel, SeventeenBeatsSplitIntoTwoBursts) {
  rtl::Simulator sim;
  auto& ahb = sim.add<AhbBus>(sim, "AHB_", 32, 8);
  sim.add<WaitAhbSlave>(ahb.pins(), 0);
  std::vector<std::uint64_t> words(17, 1);
  ahb.write(1, words);
  run_until_idle(sim, ahb);
  EXPECT_EQ(ahb.bursts(), 2u);  // 16-beat max burst + remainder
}

TEST(AhbModel, WaitStatesStretchButPreserveData) {
  rtl::Simulator sim;
  auto& ahb = sim.add<AhbBus>(sim, "AHB_", 32, 4);
  auto& slave = sim.add<WaitAhbSlave>(ahb.pins(), 3);
  ahb.write(1, {1, 2, 3});
  run_until_idle(sim, ahb);
  EXPECT_EQ(slave.received, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(AhbModel, ReadsCollectSlaveData) {
  rtl::Simulator sim;
  auto& ahb = sim.add<AhbBus>(sim, "AHB_", 32, 4);
  sim.add<WaitAhbSlave>(ahb.pins(), 1);
  ahb.read(1, 3);
  run_until_idle(sim, ahb);
  EXPECT_EQ(ahb.read_data(),
            (std::vector<std::uint64_t>{0x42, 0x42, 0x42}));
}

}  // namespace
