// Property tests for the software word codec (§3.1.3 packing / §3.1.4
// splitting): encode/decode round trips over a parameter sweep of type
// widths, bus widths, packing flags and element counts — plus agreement
// with the IoParam word-count arithmetic the hardware generator uses.
#include <gtest/gtest.h>

#include <tuple>

#include "drivergen/wordcodec.hpp"
#include "support/bits.hpp"

namespace {

using namespace splice;
using namespace splice::drivergen;

ir::IoParam make_param(unsigned type_bits, bool packed, unsigned count) {
  ir::IoParam p;
  p.name = "x";
  p.type.name = "t";
  p.type.bits = type_bits;
  p.is_pointer = count != 1;
  p.count_kind = ir::CountKind::Explicit;
  p.explicit_count = count;
  p.packed = packed;
  return p;
}

std::vector<std::uint64_t> deterministic_elements(unsigned count,
                                                  unsigned bits,
                                                  std::uint32_t seed) {
  std::vector<std::uint64_t> out;
  std::uint64_t state = seed * 0x9E3779B97F4A7C15ull + 1;
  for (unsigned i = 0; i < count; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    out.push_back((state >> 13) & bits::low_mask(std::min(bits, 64u)));
  }
  return out;
}

// (type_bits, bus_width, packed, element_count)
using Config = std::tuple<unsigned, unsigned, bool, unsigned>;

class CodecRoundTrip : public ::testing::TestWithParam<Config> {};

TEST_P(CodecRoundTrip, EncodeDecodeIsIdentity) {
  const auto [type_bits, bus_width, packed, count] = GetParam();
  const ir::IoParam p = make_param(type_bits, packed, count);
  const auto elements = deterministic_elements(count, type_bits, 7);

  const auto words = encode_elements(p, elements, bus_width);
  EXPECT_EQ(words.size(), word_count(p, count, bus_width));
  const auto decoded = decode_words(p, words, count, bus_width);
  EXPECT_EQ(decoded, elements)
      << "type=" << type_bits << " bus=" << bus_width
      << " packed=" << packed << " n=" << count;

  // Every emitted word fits the bus.
  for (std::uint64_t w : words) {
    EXPECT_EQ(w & ~bits::low_mask(bus_width), 0u);
  }
}

std::string config_name(const ::testing::TestParamInfo<Config>& info) {
  const unsigned tb = std::get<0>(info.param);
  const unsigned bw = std::get<1>(info.param);
  const bool packed = std::get<2>(info.param);
  const unsigned n = std::get<3>(info.param);
  return "t" + std::to_string(tb) + "_b" + std::to_string(bw) +
         (packed ? "_packed" : "_plain") + "_n" + std::to_string(n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CodecRoundTrip,
    ::testing::Combine(
        ::testing::Values(8u, 16u, 32u, 64u),   // element type width
        ::testing::Values(32u, 64u),            // bus width
        ::testing::Bool(),                      // packed
        ::testing::Values(1u, 2u, 5u, 16u, 31u)),
    config_name);

TEST(Codec, PackedWordCountsMatchThesisExample) {
  // §3.1.3: 8 chars over a 32-bit bus => 2 packed words instead of 8.
  const ir::IoParam p = make_param(8, /*packed=*/true, 8);
  EXPECT_EQ(word_count(p, 8, 32), 2u);
  const ir::IoParam unpacked = make_param(8, false, 8);
  EXPECT_EQ(word_count(unpacked, 8, 32), 8u);
}

TEST(Codec, SplitWordCountsMatchThesisExample) {
  // §3.1.4: one 64-bit double over a 32-bit bus => 2 words; an array of 16
  // doubles => 32 words.
  const ir::IoParam one = make_param(64, false, 1);
  EXPECT_EQ(word_count(one, 1, 32), 2u);
  const ir::IoParam many = make_param(64, false, 16);
  EXPECT_EQ(word_count(many, 16, 32), 32u);
}

TEST(Codec, SplitIsMswFirst) {
  const ir::IoParam p = make_param(64, false, 1);
  const auto words = encode_elements(p, {0x1122334455667788ull}, 32);
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[0], 0x11223344u);  // most significant word first
  EXPECT_EQ(words[1], 0x55667788u);
}

TEST(Codec, PackedLanesAreLowOrderFirst) {
  const ir::IoParam p = make_param(8, true, 4);
  const auto words = encode_elements(p, {0xAA, 0xBB, 0xCC, 0xDD}, 32);
  ASSERT_EQ(words.size(), 1u);
  EXPECT_EQ(words[0], 0xDDCCBBAAu);
}

TEST(Codec, PackedTailPaddingIsZero) {
  const ir::IoParam p = make_param(8, true, 5);
  const auto words = encode_elements(p, {1, 2, 3, 4, 5}, 32);
  ASSERT_EQ(words.size(), 2u);
  EXPECT_EQ(words[1], 5u);  // lanes beyond the data are zero padding
}

TEST(Codec, DecodeToleratesShortWordStream) {
  const ir::IoParam p = make_param(32, false, 4);
  const auto decoded = decode_words(p, {7, 8}, 4, 32);
  ASSERT_EQ(decoded.size(), 4u);
  EXPECT_EQ(decoded[0], 7u);
  EXPECT_EQ(decoded[3], 0u);  // zero-filled
}

TEST(Codec, ElementsMaskedToTypeWidth) {
  const ir::IoParam p = make_param(8, false, 2);
  const auto words = encode_elements(p, {0x1FF, 0x2AB}, 32);
  EXPECT_EQ(words[0], 0xFFu);
  EXPECT_EQ(words[1], 0xABu);
}

}  // namespace
