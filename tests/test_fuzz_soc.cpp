// The SoC fuzz campaign: the topology generator's validity guarantee and
// the fixed-seed 200-config lockstep commit gate — every generated
// multi-device SoC replayed on the interpreter and the compiled backend
// side by side, with cross-device checker axioms, byte-compared decoded
// streams, and zero oracle violations.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "support/telemetry.hpp"
#include "testing/conformance.hpp"
#include "testing/fuzz.hpp"
#include "testing/spec_gen.hpp"

namespace {

using namespace splice;
using namespace splice::testing;

// --- generator --------------------------------------------------------------

TEST(SocGen, GeneratedTopologiesAreValidByConstruction) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const SocModel soc = generate_soc(splitmix64(seed));
    ASSERT_GE(soc.devices.size(), 2u) << "seed " << seed;
    ASSERT_LE(soc.devices.size(), 4u) << "seed " << seed;
    ASSERT_EQ(soc.devices.size(), soc.segments.size());
    EXPECT_EQ(soc.segments[0], 0u) << "device 0 anchors the root segment";
    EXPECT_GE(soc.masters, 1u);
    EXPECT_LE(soc.masters, 2u);
    for (std::size_t d = 0; d < soc.devices.size(); ++d) {
      DiagnosticEngine diags;
      auto spec = frontend::parse_spec(soc.devices[d].render(), diags);
      ASSERT_TRUE(spec.has_value())
          << "seed " << seed << " device " << d << ":\n" << diags.render();
      EXPECT_TRUE(ir::validate(*spec, diags))
          << "seed " << seed << " device " << d << ":\n" << diags.render();
      // Names must be unique: they become distinct address windows.
      for (std::size_t e = d + 1; e < soc.devices.size(); ++e) {
        EXPECT_NE(soc.devices[d].device_name, soc.devices[e].device_name);
      }
    }
  }
}

TEST(SocGen, DeterministicInSeed) {
  EXPECT_EQ(generate_soc(7).render(), generate_soc(7).render());
  EXPECT_NE(generate_soc(7).render(), generate_soc(8).render());
}

TEST(SocGen, TopologyDiversityAcrossSeeds) {
  // The campaign must actually sweep the matrix: bridged and flat
  // topologies, single- and dual-master configs, irq fabric on and off.
  bool bridged = false, flat = false, dual = false, single = false,
       irq = false, polled = false;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const SocModel soc = generate_soc(splitmix64(seed));
    bool any_sub = false;
    for (unsigned s : soc.segments) any_sub = any_sub || s == 1;
    (any_sub ? bridged : flat) = true;
    (soc.masters > 1 ? dual : single) = true;
    (soc.irq ? irq : polled) = true;
  }
  EXPECT_TRUE(bridged && flat && dual && single && irq && polled);
}

// --- single-config oracle sanity -------------------------------------------

TEST(SocOracle, CleanConfigPassesLockstep) {
  const SocModel soc = generate_soc(3);
  OracleOptions opt;
  opt.backend = OracleBackend::kLockstep;
  const OracleResult r = run_soc_conformance(soc, opt);
  EXPECT_FALSE(r.spec_rejected);
  EXPECT_TRUE(r.failures.empty())
      << r.failures.front() << "\n" << soc.render();
  EXPECT_GT(r.calls, 0u);
  EXPECT_GT(r.bus_cycles, 0u);
}

// --- the commit gate --------------------------------------------------------

TEST(SocFuzzCampaign, FixedSeed200ConfigsZeroViolations) {
  FuzzOptions opt;
  opt.seed = 1;
  opt.count = 200;
  opt.soc = true;
  support::telemetry::MetricsRegistry metrics;
  opt.metrics = &metrics;

  const FuzzReport report = run_fuzz(opt);

  EXPECT_EQ(report.specs_run, 200u);
  EXPECT_TRUE(report.clean()) << [&] {
    std::string all;
    for (const auto& f : report.failures) {
      all += "config " + std::to_string(f.index) + " (seed " +
             std::to_string(f.spec_seed) + "): " + f.summary + "\n" +
             f.soc_repro + "\n";
    }
    return all;
  }();
  EXPECT_FALSE(report.time_boxed_out);
  EXPECT_EQ(metrics.counter("fuzz.specs").value(), 200u);
  EXPECT_EQ(metrics.counter("fuzz.failures").value(), 0u);
  EXPECT_GT(metrics.counter("fuzz.calls").value(), 0u);
  EXPECT_EQ(metrics.counter("fuzz.backend_mismatch").value(), 0u);
}

}  // namespace
