// Simulation-kernel tests: signal semantics, two-phase scheduling,
// combinational settling, trace recording and VCD output.
#include <gtest/gtest.h>

#include "rtl/simulator.hpp"
#include "rtl/trace.hpp"
#include "rtl/vcd.hpp"

namespace {

using namespace splice;
using namespace splice::rtl;

TEST(Signal, WidthMasking) {
  Signal s("s", 8);
  s.drive(std::uint64_t{0x1FF});
  EXPECT_EQ(s.get(), 0xFFu);
  EXPECT_THROW(Signal("bad", 0), SpliceError);
  EXPECT_THROW(Signal("bad", 65), SpliceError);
}

TEST(Signal, DriveReportsChange) {
  Signal s("s", 4);
  EXPECT_TRUE(s.drive(std::uint64_t{3}));
  EXPECT_FALSE(s.drive(std::uint64_t{3}));
  EXPECT_TRUE(s.drive(std::uint64_t{4}));
}

// A toggling register: classic positive-edge flip-flop behaviour.
class Toggler : public Module {
 public:
  Toggler(Simulator& sim)
      : Module("toggler"), q_(sim.signal("q", 1)) {}
  void clock_edge() override { q_.set(!q_.high()); }
  Signal& q_;
};

TEST(Simulator, RegisteredWritesCommitOnEdge) {
  Simulator sim;
  auto& mod = sim.add<Toggler>(sim);
  EXPECT_EQ(mod.q_.get(), 0u);
  sim.step();
  EXPECT_EQ(mod.q_.get(), 1u);
  sim.step();
  EXPECT_EQ(mod.q_.get(), 0u);
  sim.step(3);
  EXPECT_EQ(mod.q_.get(), 1u);
  EXPECT_EQ(sim.cycle(), 5u);
}

// Combinational chain: c = b + 1, b = a + 1 (listed out of order to force
// a second settling iteration).
class Chain : public Module {
 public:
  Chain(Simulator& sim)
      : Module("chain"),
        a_(sim.signal("a", 8)),
        b_(sim.signal("b", 8)),
        c_(sim.signal("c", 8)) {}
  void eval_comb() override {
    c_.drive(b_.get() + 1);
    b_.drive(a_.get() + 1);
  }
  Signal &a_, &b_, &c_;
};

TEST(Simulator, CombinationalChainsSettle) {
  Simulator sim;
  auto& mod = sim.add<Chain>(sim);
  mod.a_.drive(std::uint64_t{5});
  sim.step();
  EXPECT_EQ(mod.b_.get(), 6u);
  EXPECT_EQ(mod.c_.get(), 7u);
}

// A true combinational loop: x = !x.
class Oscillator : public Module {
 public:
  Oscillator(Simulator& sim) : Module("osc"), x_(sim.signal("x", 1)) {}
  void eval_comb() override { x_.drive(!x_.high()); }
  Signal& x_;
};

TEST(Simulator, CombinationalLoopDetected) {
  Simulator sim;
  sim.add<Oscillator>(sim);
  EXPECT_THROW(sim.step(), SpliceError);
}

TEST(Simulator, SignalRegistryDeduplicatesByName) {
  Simulator sim;
  Signal& a = sim.signal("x", 8);
  Signal& b = sim.signal("x", 8);
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(sim.signal("x", 16), SpliceError);
  EXPECT_EQ(sim.find_signal("nope"), nullptr);
}

TEST(Simulator, StepUntilStopsEarly) {
  Simulator sim;
  auto& mod = sim.add<Toggler>(sim);
  bool hit = sim.step_until([&] { return mod.q_.high(); }, 100);
  EXPECT_TRUE(hit);
  EXPECT_LT(sim.cycle(), 100u);
  bool miss = sim.step_until([] { return false; }, 10);
  EXPECT_FALSE(miss);
}

TEST(Trace, RecordsPerCycleValues) {
  Simulator sim;
  auto& mod = sim.add<Toggler>(sim);
  Trace trace(sim);
  trace.watch(mod.q_);
  sim.step(4);
  const auto& hist = trace.history("q");
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 0u);
  EXPECT_EQ(hist[3], 1u);
  EXPECT_THROW((void)trace.history("unknown"), SpliceError);
}

TEST(Trace, AsciiRenderingShowsLevelsAndValues) {
  Simulator sim;
  auto& mod = sim.add<Toggler>(sim);
  Signal& vec = sim.signal("vec", 8);
  vec.drive(std::uint64_t{0xAB});
  Trace trace(sim);
  trace.watch(mod.q_);
  trace.watch(vec);
  sim.step(3);
  const std::string wave = trace.render_ascii();
  EXPECT_NE(wave.find('q'), std::string::npos);
  EXPECT_NE(wave.find("AB"), std::string::npos);
  EXPECT_NE(wave.find('-'), std::string::npos);  // a high level somewhere
  EXPECT_NE(wave.find('_'), std::string::npos);  // a low level somewhere
}

TEST(Vcd, ProducesWellFormedHeaderAndChanges) {
  Simulator sim;
  auto& mod = sim.add<Toggler>(sim);
  Trace trace(sim);
  trace.watch(mod.q_);
  sim.step(3);
  const std::string vcd = to_vcd(trace, sim, "top");
  EXPECT_NE(vcd.find("$scope module top $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! q $end"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("1!"), std::string::npos);
}

TEST(Simulator, ResetInvokesModuleHooks) {
  Simulator sim;
  auto& mod = sim.add<Toggler>(sim);
  sim.step(3);
  EXPECT_EQ(sim.cycle(), 3u);
  sim.reset();
  EXPECT_EQ(sim.cycle(), 0u);
  (void)mod;
}

// -- event-driven scheduling -----------------------------------------------

// A watched follower: out = in + 1, sensitive only to `in`.
class Follower : public Module {
 public:
  Follower(Simulator& sim, Signal& in, const std::string& out)
      : Module("follow_" + out), in_(in), out_(sim.signal(out, 8)) {
    watch(in_);
  }
  void eval_comb() override { out_.drive(in_.get() + 1); }
  Signal& in_;
  Signal& out_;
};

TEST(EventKernel, WatchedModuleOnlyRunsWhenItsSignalChanges) {
  Simulator sim;
  Signal& a = sim.signal("a", 8);
  Signal& unrelated = sim.signal("unrelated", 8);
  auto& f = sim.add<Follower>(sim, a, "fa");
  sim.settle();  // initial evaluation after adoption
  const std::uint64_t after_init = f.eval_count();
  EXPECT_GE(after_init, 1u);

  unrelated.drive(std::uint64_t{7});
  sim.settle();
  EXPECT_EQ(f.eval_count(), after_init);  // not on its sensitivity list

  a.drive(std::uint64_t{4});
  sim.settle();
  EXPECT_GT(f.eval_count(), after_init);
  EXPECT_EQ(f.out_.get(), 5u);
}

TEST(EventKernel, ChainPropagatesThroughWatchLists) {
  Simulator sim;
  Signal& a = sim.signal("a", 8);
  auto& f1 = sim.add<Follower>(sim, a, "s1");
  auto& f2 = sim.add<Follower>(sim, f1.out_, "s2");
  auto& f3 = sim.add<Follower>(sim, f2.out_, "s3");
  a.drive(std::uint64_t{10});
  sim.settle();
  EXPECT_EQ(f3.out_.get(), 13u);
  // No fallback passes: every module declared its sensitivities.
  EXPECT_EQ(sim.stats().fallback_passes, 0u);
  EXPECT_GT(sim.stats().worklist_pushes, 0u);
}

// A register whose combinational output depends on internal state: the
// classic case needing mark_dirty() from clock_edge.
class StateMirror : public Module {
 public:
  StateMirror(Simulator& sim)
      : Module("mirror"), out_(sim.signal("mirror_out", 8)) {
    watch_none();  // reads no signals combinationally...
  }
  void eval_comb() override { out_.drive(count_); }
  void clock_edge() override {
    ++count_;
    mark_dirty();  // ...but eval_comb reads count_
  }
  Signal& out_;
  std::uint64_t count_ = 0;
};

TEST(EventKernel, MarkDirtyReschedulesStateDependentComb) {
  Simulator sim;
  auto& m = sim.add<StateMirror>(sim);
  sim.step(3);
  EXPECT_EQ(m.out_.get(), 3u);
}

TEST(EventKernel, CombinationalLoopDetectedUnderWatch) {
  // Same oscillator pathology, but with a declared sensitivity so the
  // event-driven worklist (not the fallback fix point) must catch it.
  class WatchedOsc : public Module {
   public:
    WatchedOsc(Simulator& sim) : Module("wosc"), x_(sim.signal("wx", 1)) {
      watch(x_);
    }
    void eval_comb() override { x_.drive(!x_.high()); }
    Signal& x_;
  };
  Simulator sim;
  sim.add<WatchedOsc>(sim);
  EXPECT_THROW(sim.step(), SpliceError);
}

TEST(EventKernel, FullPassModeMatchesAndCountsMoreEvals) {
  auto run = [](Simulator::SettleMode mode) {
    Simulator sim;
    sim.set_settle_mode(mode);
    Signal& a = sim.signal("a", 8);
    auto& f1 = sim.add<Follower>(sim, a, "s1");
    auto& f2 = sim.add<Follower>(sim, f1.out_, "s2");
    sim.add<Toggler>(sim);
    a.drive(std::uint64_t{1});
    sim.step(8);
    return std::make_pair(f2.out_.get(), sim.stats().evals);
  };
  auto [ev_out, ev_evals] = run(Simulator::SettleMode::kEventDriven);
  auto [fp_out, fp_evals] = run(Simulator::SettleMode::kFullPass);
  EXPECT_EQ(ev_out, fp_out);
  EXPECT_LT(ev_evals, fp_evals);
}

TEST(EventKernel, StatsCountersAccumulateAndReset) {
  Simulator sim;
  Signal& a = sim.signal("a", 8);
  sim.add<Follower>(sim, a, "fa");
  sim.step(4);
  const auto& st = sim.stats();
  EXPECT_EQ(st.settles, 5u);  // initial settle + one per cycle
  EXPECT_GT(st.evals, 0u);
  EXPECT_GT(st.settle_iterations, 0u);
  sim.reset_stats();
  EXPECT_EQ(sim.stats().settles, 0u);
  EXPECT_EQ(sim.stats().evals, 0u);
}

TEST(EventKernel, RenderStatsListsModules) {
  Simulator sim;
  Signal& a = sim.signal("a", 8);
  sim.add<Follower>(sim, a, "fa");
  sim.add<Toggler>(sim);
  sim.step(2);
  const std::string out = render_stats(sim);
  EXPECT_NE(out.find("follow_fa"), std::string::npos);
  EXPECT_NE(out.find("toggler"), std::string::npos);
  EXPECT_NE(out.find("eval_comb"), std::string::npos);
}

TEST(EventKernel, UndeclaredModuleStillSettlesViaFallback) {
  Simulator sim;
  auto& chain = sim.add<Chain>(sim);  // declares no sensitivities
  chain.a_.drive(std::uint64_t{5});
  sim.step();
  EXPECT_EQ(chain.c_.get(), 7u);
  EXPECT_GT(sim.stats().fallback_passes, 0u);
}

TEST(EventKernel, WatcherOnUnownedSignalThrows) {
  Simulator sim;
  Signal loose("loose", 4);
  class Watcher : public Module {
   public:
    Watcher(Signal& s) : Module("watcher") { watch(s); }
  };
  EXPECT_THROW(sim.add<Watcher>(loose), SpliceError);
}

}  // namespace
