// Simulation-kernel tests: signal semantics, two-phase scheduling,
// combinational settling, trace recording and VCD output.
#include <gtest/gtest.h>

#include "rtl/simulator.hpp"
#include "rtl/trace.hpp"
#include "rtl/vcd.hpp"

namespace {

using namespace splice;
using namespace splice::rtl;

TEST(Signal, WidthMasking) {
  Signal s("s", 8);
  s.drive(std::uint64_t{0x1FF});
  EXPECT_EQ(s.get(), 0xFFu);
  EXPECT_THROW(Signal("bad", 0), SpliceError);
  EXPECT_THROW(Signal("bad", 65), SpliceError);
}

TEST(Signal, DriveReportsChange) {
  Signal s("s", 4);
  EXPECT_TRUE(s.drive(std::uint64_t{3}));
  EXPECT_FALSE(s.drive(std::uint64_t{3}));
  EXPECT_TRUE(s.drive(std::uint64_t{4}));
}

// A toggling register: classic positive-edge flip-flop behaviour.
class Toggler : public Module {
 public:
  Toggler(Simulator& sim)
      : Module("toggler"), q_(sim.signal("q", 1)) {}
  void clock_edge() override { q_.set(!q_.high()); }
  Signal& q_;
};

TEST(Simulator, RegisteredWritesCommitOnEdge) {
  Simulator sim;
  auto& mod = sim.add<Toggler>(sim);
  EXPECT_EQ(mod.q_.get(), 0u);
  sim.step();
  EXPECT_EQ(mod.q_.get(), 1u);
  sim.step();
  EXPECT_EQ(mod.q_.get(), 0u);
  sim.step(3);
  EXPECT_EQ(mod.q_.get(), 1u);
  EXPECT_EQ(sim.cycle(), 5u);
}

// Combinational chain: c = b + 1, b = a + 1 (listed out of order to force
// a second settling iteration).
class Chain : public Module {
 public:
  Chain(Simulator& sim)
      : Module("chain"),
        a_(sim.signal("a", 8)),
        b_(sim.signal("b", 8)),
        c_(sim.signal("c", 8)) {}
  void eval_comb() override {
    c_.drive(b_.get() + 1);
    b_.drive(a_.get() + 1);
  }
  Signal &a_, &b_, &c_;
};

TEST(Simulator, CombinationalChainsSettle) {
  Simulator sim;
  auto& mod = sim.add<Chain>(sim);
  mod.a_.drive(std::uint64_t{5});
  sim.step();
  EXPECT_EQ(mod.b_.get(), 6u);
  EXPECT_EQ(mod.c_.get(), 7u);
}

// A true combinational loop: x = !x.
class Oscillator : public Module {
 public:
  Oscillator(Simulator& sim) : Module("osc"), x_(sim.signal("x", 1)) {}
  void eval_comb() override { x_.drive(!x_.high()); }
  Signal& x_;
};

TEST(Simulator, CombinationalLoopDetected) {
  Simulator sim;
  sim.add<Oscillator>(sim);
  EXPECT_THROW(sim.step(), SpliceError);
}

TEST(Simulator, SignalRegistryDeduplicatesByName) {
  Simulator sim;
  Signal& a = sim.signal("x", 8);
  Signal& b = sim.signal("x", 8);
  EXPECT_EQ(&a, &b);
  EXPECT_THROW(sim.signal("x", 16), SpliceError);
  EXPECT_EQ(sim.find_signal("nope"), nullptr);
}

TEST(Simulator, StepUntilStopsEarly) {
  Simulator sim;
  auto& mod = sim.add<Toggler>(sim);
  bool hit = sim.step_until([&] { return mod.q_.high(); }, 100);
  EXPECT_TRUE(hit);
  EXPECT_LT(sim.cycle(), 100u);
  bool miss = sim.step_until([] { return false; }, 10);
  EXPECT_FALSE(miss);
}

TEST(Trace, RecordsPerCycleValues) {
  Simulator sim;
  auto& mod = sim.add<Toggler>(sim);
  Trace trace(sim);
  trace.watch(mod.q_);
  sim.step(4);
  const auto& hist = trace.history("q");
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 0u);
  EXPECT_EQ(hist[3], 1u);
  EXPECT_THROW((void)trace.history("unknown"), SpliceError);
}

TEST(Trace, AsciiRenderingShowsLevelsAndValues) {
  Simulator sim;
  auto& mod = sim.add<Toggler>(sim);
  Signal& vec = sim.signal("vec", 8);
  vec.drive(std::uint64_t{0xAB});
  Trace trace(sim);
  trace.watch(mod.q_);
  trace.watch(vec);
  sim.step(3);
  const std::string wave = trace.render_ascii();
  EXPECT_NE(wave.find('q'), std::string::npos);
  EXPECT_NE(wave.find("AB"), std::string::npos);
  EXPECT_NE(wave.find('-'), std::string::npos);  // a high level somewhere
  EXPECT_NE(wave.find('_'), std::string::npos);  // a low level somewhere
}

TEST(Vcd, ProducesWellFormedHeaderAndChanges) {
  Simulator sim;
  auto& mod = sim.add<Toggler>(sim);
  Trace trace(sim);
  trace.watch(mod.q_);
  sim.step(3);
  const std::string vcd = to_vcd(trace, sim, "top");
  EXPECT_NE(vcd.find("$scope module top $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! q $end"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("1!"), std::string::npos);
}

TEST(Simulator, ResetInvokesModuleHooks) {
  Simulator sim;
  auto& mod = sim.add<Toggler>(sim);
  sim.step(3);
  EXPECT_EQ(sim.cycle(), 3u);
  sim.reset();
  EXPECT_EQ(sim.cycle(), 0u);
  (void)mod;
}

}  // namespace
