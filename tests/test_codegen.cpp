// Code-generation tests: template engine (Figure 7.1 macro set), stub
// model structure, VHDL and Verilog writers, and the generated file set.
#include <gtest/gtest.h>

#include "codegen/hwgen.hpp"
#include "codegen/stub_model.hpp"
#include "codegen/template.hpp"
#include "codegen/verilog.hpp"
#include "codegen/vhdl.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"

namespace {

using namespace splice;
using namespace splice::codegen;

ir::DeviceSpec spec_from(const std::string& body,
                         const std::string& directives = "") {
  std::string text =
      "%device_name gen_dev\n%bus_type plb\n%bus_width 32\n"
      "%base_address 0x80001000\n" + directives + body;
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  EXPECT_TRUE(spec.has_value()) << diags.render();
  EXPECT_TRUE(ir::validate(*spec, diags)) << diags.render();
  return std::move(*spec);
}

// --- template engine ---------------------------------------------------------

TEST(TemplateEngine, ExpandsStandardMacros) {
  auto spec = spec_from("int f(int x);\n");
  TemplateEngine engine = make_standard_engine();
  MacroContext ctx{&spec, &spec.functions[0]};
  DiagnosticEngine diags;
  const std::string out = engine.expand(
      "dev=%COMP_NAME% width=%BUS_WIDTH% idw=%FUNC_ID_WIDTH% "
      "addr=%BASE_ADDR% fn=%FUNC_NAME% id=%MY_FUNC_ID% n=%FUNC_INSTS%",
      ctx, diags);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(out,
            "dev=gen_dev width=32 idw=1 addr=0x80001000 fn=f id=1 n=1");
}

TEST(TemplateEngine, UnknownMacroReportedAndLeftInPlace) {
  TemplateEngine engine = make_standard_engine();
  auto spec = spec_from("int f();\n");
  MacroContext ctx{&spec, nullptr};
  DiagnosticEngine diags;
  const std::string out = engine.expand("x %NO_SUCH_MACRO% y", ctx, diags);
  EXPECT_TRUE(diags.contains(DiagId::TemplateUnknownMacro));
  EXPECT_NE(out.find("%NO_SUCH_MACRO%"), std::string::npos);
}

TEST(TemplateEngine, StrayPercentPassesThrough) {
  TemplateEngine engine = make_standard_engine();
  auto spec = spec_from("int f();\n");
  MacroContext ctx{&spec, nullptr};
  DiagnosticEngine diags;
  EXPECT_EQ(engine.expand("50% of 100%", ctx, diags), "50% of 100%");
  EXPECT_FALSE(diags.has_errors());
}

TEST(TemplateEngine, Figure71MacroSetPresent) {
  TemplateEngine engine = make_standard_engine();
  for (const char* name :
       {"COMP_NAME", "BUS_WIDTH", "FUNC_ID_WIDTH", "BASE_ADDR", "GEN_DATE",
        "DMA_ENABLED", "FUNC_NAME", "MY_FUNC_ID", "FUNC_INSTS",
        "FUNC_CONSTS", "FUNC_SIGNALS", "FUNC_FSM", "FUNC_STUB",
        "DATA_OUT_MUX", "DATA_OUT_V_MUX", "IO_DONE_MUX",
        "CALC_DONE_ENCODE"}) {
    EXPECT_TRUE(engine.has_macro(name)) << name;
  }
}

TEST(TemplateEngine, CustomMarkerRegistration) {
  TemplateEngine engine = make_standard_engine();
  engine.register_macro("MY_MARK",
                        [](const MacroContext&) { return "hello"; });
  auto spec = spec_from("int f();\n");
  MacroContext ctx{&spec, nullptr};
  DiagnosticEngine diags;
  EXPECT_EQ(engine.expand("%MY_MARK%", ctx, diags), "hello");
}

// --- stub model ---------------------------------------------------------------

TEST(StubModel, StatesFollowDeclarationOrder) {
  auto spec = spec_from("int f(int a, char*:4 b);\n");
  const StubModel m = build_stub_model(spec.functions[0], spec.target);
  ASSERT_EQ(m.states.size(), 4u);
  EXPECT_EQ(m.states[0].name, "IN_a");
  EXPECT_EQ(m.states[1].name, "IN_b");
  EXPECT_EQ(m.states[2].name, "CALC_0");
  EXPECT_EQ(m.states[3].name, "OUT_RESULT");
}

TEST(StubModel, ExplicitArrayGetsTrackingRegisterAndComparator) {
  auto spec = spec_from("void f(int*:5 x);\n");
  const StubModel m = build_stub_model(spec.functions[0], spec.target);
  bool has_counter = false;
  for (const auto& r : m.registers) {
    if (r.name == "x_counter") has_counter = true;
  }
  EXPECT_TRUE(has_counter);
  EXPECT_FALSE(m.comparators.empty());
}

TEST(StubModel, ImplicitArrayAlsoLatchesBound) {
  auto spec = spec_from("void f(char n, int*:n xs);\n");
  const StubModel m = build_stub_model(spec.functions[0], spec.target);
  bool has_max = false;
  for (const auto& r : m.registers) {
    if (r.name == "xs_max_value") has_max = true;
  }
  EXPECT_TRUE(has_max);
}

TEST(StubModel, SplitTransferGetsAccumulator) {
  auto spec = spec_from("%user_type llong, unsigned long long, 64\n"
                        "void f(llong v);\n");
  const StubModel m = build_stub_model(spec.functions[0], spec.target);
  bool has_acc = false;
  for (const auto& r : m.registers) {
    if (r.name == "v_acc") has_acc = true;
  }
  EXPECT_TRUE(has_acc);
  EXPECT_EQ(m.states[0].words, 2u);
}

TEST(StubModel, PackedTailIgnoreBitsComputed) {
  // 5 chars packed into 32-bit words: 2 words = 64 bits, data = 40 bits,
  // so 24 trailing bits are ignorable (the §5.3.1 generated comment).
  auto spec = spec_from("void f(char*:5+ x);\n");
  const StubModel m = build_stub_model(spec.functions[0], spec.target);
  EXPECT_EQ(m.states[0].words, 2u);
  EXPECT_EQ(m.states[0].ignore_bits, 24u);
  EXPECT_NE(m.states[0].comment.find("ignore"), std::string::npos);
}

TEST(StubModel, NowaitHasNoOutputState) {
  auto spec = spec_from("nowait f(int x);\n");
  const StubModel m = build_stub_model(spec.functions[0], spec.target);
  for (const auto& st : m.states) {
    EXPECT_EQ(st.name.find("OUT"), std::string::npos);
  }
}

// --- VHDL writer ---------------------------------------------------------------

TEST(VhdlWriter, StubFileHasEntityPortsAndStates) {
  auto spec = spec_from("int add(int a, int b);\n");
  const std::string v = vhdl::emit_stub_file(spec.functions[0], spec);
  EXPECT_NE(v.find("entity func_add is"), std::string::npos);
  EXPECT_NE(v.find("DATA_IN        : in  std_logic_vector(0 to 31)"),
            std::string::npos);
  EXPECT_NE(v.find("CALC_DONE      : out std_logic"), std::string::npos);
  EXPECT_NE(v.find("type state_type is (IN_a, IN_b, CALC_0, OUT_RESULT)"),
            std::string::npos);
  EXPECT_NE(v.find("MY_FUNC_ID"), std::string::npos);
  EXPECT_NE(v.find("end Behavioral;"), std::string::npos);
}

TEST(VhdlWriter, ArbiterInstantiatesEveryInstance) {
  auto spec = spec_from("int f(int x):3;\nint g();\n");
  const std::string v = vhdl::emit_arbiter_file(spec);
  EXPECT_NE(v.find("entity user_gen_dev is"), std::string::npos);
  for (const char* label : {"f_0_inst", "f_1_inst", "f_2_inst", "g_0_inst"}) {
    EXPECT_NE(v.find(label), std::string::npos) << label;
  }
  EXPECT_NE(v.find("CALC_DONE_VEC(4)"), std::string::npos);
  EXPECT_NE(v.find("data_out_mux"), std::string::npos);
}

TEST(VhdlWriter, SlvHelper) {
  EXPECT_EQ(vhdl::slv(1), "std_logic");
  EXPECT_EQ(vhdl::slv(32), "std_logic_vector(0 to 31)");
}

// --- Verilog writer (thesis future work, implemented) --------------------------

TEST(VerilogWriter, StubFileHasModuleAndStates) {
  auto spec = spec_from("%target_hdl verilog\nint add(int a, int b);\n");
  const std::string v = verilog::emit_stub_file(spec.functions[0], spec);
  EXPECT_NE(v.find("module func_add"), std::string::npos);
  EXPECT_NE(v.find("localparam MY_FUNC_ID = 1;"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge CLK)"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(VerilogWriter, ArbiterUsesCaseMux) {
  auto spec = spec_from("%target_hdl verilog\nint f(int x):2;\n");
  const std::string v = verilog::emit_arbiter_file(spec);
  EXPECT_NE(v.find("module user_gen_dev"), std::string::npos);
  EXPECT_NE(v.find("case (FUNC_ID)"), std::string::npos);
  EXPECT_NE(v.find("assign CALC_DONE_VEC[2]"), std::string::npos);
}

// --- hwgen orchestration --------------------------------------------------------

TEST(HwGen, FileSetMatchesFigure83Shape) {
  auto spec = spec_from("int f(int x);\nvoid g();\n");
  auto files = generate_user_logic(spec);
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0].filename, "user_gen_dev.vhd");
  EXPECT_EQ(files[1].filename, "func_f.vhd");
  EXPECT_EQ(files[2].filename, "func_g.vhd");
}

TEST(HwGen, VerilogTargetChangesExtension) {
  auto spec = spec_from("%target_hdl verilog\nint f(int x);\n");
  auto files = generate_user_logic(spec);
  EXPECT_EQ(files[0].filename, "user_gen_dev.v");
  EXPECT_EQ(files[1].filename, "func_f.v");
  EXPECT_EQ(hdl_extension(ir::Hdl::Vhdl), ".vhd");
  EXPECT_EQ(hdl_extension(ir::Hdl::Verilog), ".v");
}

TEST(HwGen, UnassignedFuncIdsRejected) {
  ir::DeviceSpec spec;
  spec.target.device_name = "x";
  spec.target.bus_width = 32;
  ir::FunctionDecl fn;
  fn.name = "f";
  spec.functions.push_back(fn);
  EXPECT_THROW(generate_user_logic(spec), SpliceError);
}

}  // namespace
