// Lint-pass tests: hand-built ASTs with seeded defects must trip the
// matching 500-range DiagId, and every AST the builder produces for the
// example-style specs must come out clean across all five buses.
#include <gtest/gtest.h>

#include "codegen/hdl_builder.hpp"
#include "codegen/hdl_lint.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"

namespace {

using namespace splice;
using namespace splice::codegen;

/// Minimal clean module: an 8-bit register with synchronous clear.
ast::Module base_module() {
  ast::Module m;
  m.ctx = std::make_shared<ast::AstContext>();
  ast::AstContext& c = *m.ctx;
  m.name = "lint_probe";
  m.arch_name = "Behavioral";
  m.ports = {
      {"CLK", true, 1, false, false},
      {"RST", true, 1, false, false},
      {"D", true, 8, false, false},
      {"Q", false, 8, true, false},
  };
  ast::Process p;
  p.kind = ast::Process::Kind::Clocked;
  p.label = "reg";
  p.body = c.stmts({c.if_then(
      c.signal("RST"), c.stmts({c.assign("Q", c.zeros(8))}),
      c.stmts({c.assign("Q", c.signal("D"))}))});
  m.processes.push_back(std::move(p));
  return m;
}

/// Append one statement to a process body (spans are immutable, so the
/// extended list is re-materialized through the module's context).
void append_stmt(ast::Module& m, std::size_t pi, const ast::Stmt* s) {
  std::vector<const ast::Stmt*> body(m.processes[pi].body.begin(),
                                     m.processes[pi].body.end());
  body.push_back(s);
  m.processes[pi].body = m.ctx->stmts(body);
}

/// Three-state FSM skeleton; `loop_back` reroutes S1 to S0 so that S2
/// loses its only incoming transition.
ast::Module fsm_module(bool loop_back) {
  ast::Module m;
  m.ctx = std::make_shared<ast::AstContext>();
  ast::AstContext& c = *m.ctx;
  m.name = "fsm_probe";
  m.arch_name = "Behavioral";
  m.ports = {
      {"CLK", true, 1, false, false},
      {"RST", true, 1, false, false},
  };
  ast::Fsm fsm;
  fsm.states = {"S0", "S1", "S2"};
  fsm.state_width = 2;
  m.fsm = std::move(fsm);

  ast::Process reg;
  reg.kind = ast::Process::Kind::Clocked;
  reg.label = "state_reg";
  reg.body = c.stmts({c.if_then(
      c.signal("RST"), c.stmts({c.assign("cur_state", c.state("S0"))}),
      c.stmts({c.assign("cur_state", c.signal("next_state"))}))});
  m.processes.push_back(std::move(reg));

  ast::Process next;
  next.kind = ast::Process::Kind::Combinational;
  next.label = "next_logic";
  next.sensitivity = {"cur_state"};
  std::vector<ast::CaseArm> arms;
  arms.push_back(c.arm(c.state("S0"), "",
                       c.stmts({c.assign("next_state", c.state("S1"))})));
  arms.push_back(c.arm(
      c.state("S1"), "",
      c.stmts({c.assign("next_state", c.state(loop_back ? "S0" : "S2"))})));
  arms.push_back(c.arm(c.state("S2"), "",
                       c.stmts({c.assign("next_state", c.state("S0"))})));
  next.body =
      c.stmts({c.case_of(c.signal("cur_state"), c.arms(arms))});
  m.processes.push_back(std::move(next));
  return m;
}

TEST(HdlLint, CleanModulePasses) {
  DiagnosticEngine diags;
  EXPECT_TRUE(lint_module(base_module(), diags)) << diags.render();
  EXPECT_FALSE(diags.has_errors());
}

TEST(HdlLint, DuplicatePortName) {
  ast::Module m = base_module();
  m.ports.push_back({"D", true, 8, false, false});
  DiagnosticEngine diags;
  EXPECT_FALSE(lint_module(m, diags));
  EXPECT_TRUE(diags.contains(DiagId::LintDuplicatePortName));
}

TEST(HdlLint, DuplicateSignalName) {
  ast::Module m = base_module();
  // Declares the same name twice; the decls also collide with nothing else.
  m.signals.push_back({{"tmp"}, 4, "", true, true});
  m.signals.push_back({{"tmp"}, 4, "", true, true});
  DiagnosticEngine diags;
  EXPECT_FALSE(lint_module(m, diags));
  EXPECT_TRUE(diags.contains(DiagId::LintDuplicateSignalName));
}

TEST(HdlLint, SignalCollidingWithPortIsReported) {
  ast::Module m = base_module();
  m.signals.push_back({{"D"}, 8, "", true, true});
  DiagnosticEngine diags;
  EXPECT_FALSE(lint_module(m, diags));
  EXPECT_TRUE(diags.contains(DiagId::LintDuplicateSignalName));
}

TEST(HdlLint, UnknownSignalReference) {
  ast::Module m = base_module();
  append_stmt(m, 0, m.ctx->assign("Q", m.ctx->signal("ghost")));
  DiagnosticEngine diags;
  EXPECT_FALSE(lint_module(m, diags));
  EXPECT_TRUE(diags.contains(DiagId::LintUnknownSignal));
}

TEST(HdlLint, UndrivenSignal) {
  ast::Module m = base_module();
  m.signals.push_back({{"pending"}, 1, "", true, false});
  // Read it so only the driven rule fires.
  append_stmt(m, 0,
              m.ctx->if_then(m.ctx->signal("pending"),
                             m.ctx->stmts({m.ctx->assign(
                                 "Q", m.ctx->zeros(8))})));
  DiagnosticEngine diags;
  EXPECT_FALSE(lint_module(m, diags));
  EXPECT_TRUE(diags.contains(DiagId::LintUndrivenSignal));
  EXPECT_FALSE(diags.contains(DiagId::LintUnreadSignal));
}

TEST(HdlLint, UnreadSignal) {
  ast::Module m = base_module();
  m.signals.push_back({{"scratch"}, 8, "", true, false});
  append_stmt(m, 0, m.ctx->assign("scratch", m.ctx->signal("D")));
  DiagnosticEngine diags;
  EXPECT_FALSE(lint_module(m, diags));
  EXPECT_TRUE(diags.contains(DiagId::LintUnreadSignal));
  EXPECT_FALSE(diags.contains(DiagId::LintUndrivenSignal));
}

TEST(HdlLint, UserDrivenMachineryIsExempt) {
  ast::Module m = base_module();
  // Never driven, never read — but reserved for the user's logic.
  m.signals.push_back({{"x_counter"}, 5, "", true, true});
  DiagnosticEngine diags;
  EXPECT_TRUE(lint_module(m, diags)) << diags.render();
}

TEST(HdlLint, AssignmentWidthMismatch) {
  ast::Module m = base_module();
  append_stmt(m, 0, m.ctx->assign("Q", m.ctx->zeros(4)));
  DiagnosticEngine diags;
  EXPECT_FALSE(lint_module(m, diags));
  EXPECT_TRUE(diags.contains(DiagId::LintWidthMismatch));
}

TEST(HdlLint, ComparisonWidthMismatch) {
  ast::Module m = base_module();
  append_stmt(
      m, 0,
      m.ctx->if_then(m.ctx->eq(m.ctx->signal("D"), m.ctx->signal("RST")),
                     m.ctx->stmts({m.ctx->assign("Q", m.ctx->zeros(8))})));
  DiagnosticEngine diags;
  EXPECT_FALSE(lint_module(m, diags));
  EXPECT_TRUE(diags.contains(DiagId::LintWidthMismatch));
}

TEST(HdlLint, BitIndexOutOfRange) {
  ast::Module m = base_module();
  ast::ContAssignGroup g;
  ast::ContAssign a;
  a.target = "Q";
  a.index = 8;  // Q is [7:0]
  a.rhs = m.ctx->bit(0);
  g.assigns.push_back(std::move(a));
  m.cont_assigns.push_back(std::move(g));
  DiagnosticEngine diags;
  EXPECT_FALSE(lint_module(m, diags));
  EXPECT_TRUE(diags.contains(DiagId::LintWidthMismatch));
}

TEST(HdlLint, ReachableFsmPasses) {
  DiagnosticEngine diags;
  EXPECT_TRUE(lint_module(fsm_module(/*loop_back=*/false), diags))
      << diags.render();
}

TEST(HdlLint, UnreachableFsmState) {
  DiagnosticEngine diags;
  EXPECT_FALSE(lint_module(fsm_module(/*loop_back=*/true), diags));
  EXPECT_TRUE(diags.contains(DiagId::LintUnreachableState));
}

TEST(HdlLint, UserEntryStateIsNotUnreachable) {
  ast::Module m = fsm_module(/*loop_back=*/true);
  // The skeleton deliberately leaves S2 to the user's completed logic.
  m.fsm->user_entry_states.push_back("S2");
  DiagnosticEngine diags;
  EXPECT_TRUE(lint_module(m, diags)) << diags.render();
}

// --- every builder-produced AST lints clean, across all five buses -------

ir::DeviceSpec spec_for_bus(const std::string& bus) {
  const bool mapped = bus != "fcb";
  std::string text = "%device_name lintdev\n%bus_type " + bus +
                     "\n%bus_width 32\n" +
                     (mapped ? "%base_address 0x80000000\n" : "") +
                     "int scale(int x, int factor):2;\n"
                     "void fill(char*:16 buf);\n"
                     "int sum(char n, int*:n xs);\n";
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  EXPECT_TRUE(spec.has_value()) << diags.render();
  EXPECT_TRUE(ir::validate(*spec, diags)) << diags.render();
  return std::move(*spec);
}

class BuilderLint : public ::testing::TestWithParam<
                        std::tuple<std::string, ast::Dialect>> {};

TEST_P(BuilderLint, GeneratedAstsAreClean) {
  const auto& [bus, dialect] = GetParam();
  const ir::DeviceSpec spec = spec_for_bus(bus);
  DiagnosticEngine diags;
  EXPECT_TRUE(lint_module(build_arbiter_ast(spec, dialect), diags))
      << diags.render();
  for (const auto& fn : spec.functions) {
    EXPECT_TRUE(lint_module(build_stub_ast(fn, spec, dialect), diags))
        << fn.name << ": " << diags.render();
  }
}

TEST(HdlLint, PackedImplicitParamLintsClean) {
  // Fuzzer regression: a packed *implicit* transfer (char*:n+) matched both
  // the explicit-counter and the implicit-counter branches of the stub
  // model, declaring <name>_counter twice and tripping the duplicate-signal
  // lint (E501).
  std::string text =
      "%device_name lintdev\n%bus_type opb\n%bus_width 32\n"
      "%base_address 0x80000000\n"
      "void fn0(unsigned a0, char*:a0+ a1, char a2, bool a3);\n";
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  ASSERT_TRUE(spec.has_value()) << diags.render();
  ASSERT_TRUE(ir::validate(*spec, diags)) << diags.render();
  for (ast::Dialect d : {ast::Dialect::Vhdl, ast::Dialect::Verilog}) {
    EXPECT_TRUE(lint_module(build_stub_ast(spec->functions[0], *spec, d),
                            diags))
        << diags.render();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBuses, BuilderLint,
    ::testing::Combine(::testing::Values("plb", "opb", "fcb", "apb", "ahb"),
                       ::testing::Values(ast::Dialect::Vhdl,
                                         ast::Dialect::Verilog)),
    [](const auto& info) {
      return std::get<0>(info.param) +
             (std::get<1>(info.param) == ast::Dialect::Vhdl ? "_vhdl"
                                                            : "_verilog");
    });

}  // namespace
