// Full-SoC scenario matrix: multi-device topologies across a root PLB and
// a bridged OPB sub-segment, multiple CPU masters contending for the root
// bus, interrupt-driven completion of nowait calls, cross-device checker
// axioms (with deliberately-broken bridges proving they fire), and the
// lockstep byte-comparison of the decoded SoC streams across simulation
// backends.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bus/bridge.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "rtl/observe/soc_observer.hpp"
#include "runtime/cpu.hpp"
#include "runtime/soc.hpp"
#include "support/diagnostics.hpp"

namespace {

using namespace splice;
namespace obs = splice::rtl::observe;

ir::DeviceSpec spec_from(const std::string& name, const std::string& body) {
  const std::string text = "%device_name " + name +
                           "\n%bus_type plb\n%bus_width 32\n"
                           "%base_address 0x80000000\n" +
                           body;
  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(text, diags);
  EXPECT_TRUE(spec.has_value()) << diags.render();
  EXPECT_TRUE(ir::validate(*spec, diags)) << diags.render();
  return std::move(*spec);
}

elab::BehaviorMap scale_behavior(const ir::DeviceSpec& spec,
                                 std::uint64_t scale,
                                 unsigned cycles = 3) {
  elab::BehaviorMap behaviors;
  for (const ir::FunctionDecl& fn : spec.functions) {
    behaviors.set(fn.name, [scale, cycles](const elab::CallContext& ctx) {
      return elab::CalcResult{cycles, {ctx.scalar(0) * scale}};
    });
  }
  return behaviors;
}

/// The canonical 3-device / 2-segment topology of the acceptance criteria:
/// two root-PLB devices and one device behind the PLB->OPB bridge.
runtime::SocConfig three_device_config(unsigned masters = 1,
                                       bool irq = false) {
  runtime::SocConfig config;
  auto add = [&config](const std::string& name, const std::string& body,
                       unsigned segment, std::uint64_t scale,
                       unsigned cycles = 3) {
    runtime::SocDevice dev;
    dev.spec = spec_from(name, body);
    dev.behaviors = scale_behavior(dev.spec, scale, cycles);
    dev.segment = segment;
    config.devices.push_back(std::move(dev));
  };
  add("alpha", "int dbl(int x);\n", 0, 2);
  add("beta", "int tpl(int x);\nnowait slow(int x);\n", 0, 3, 40);
  add("gamma", "int qdr(int x);\nnowait far(int x);\n", 1, 4, 40);
  config.masters = masters;
  config.irq = irq;
  return config;
}

// ---------------------------------------------------------------------------
// Topology validation.

TEST(SocConfigRules, RejectsDegenerateTopologies) {
  EXPECT_THROW(runtime::SocPlatform{runtime::SocConfig{}}, SpliceError);

  runtime::SocConfig no_root = three_device_config();
  for (auto& d : no_root.devices) d.segment = 1;
  EXPECT_THROW(runtime::SocPlatform{std::move(no_root)}, SpliceError);

  runtime::SocConfig bad_masters = three_device_config();
  bad_masters.masters = 0;
  EXPECT_THROW(runtime::SocPlatform{std::move(bad_masters)}, SpliceError);

  runtime::SocConfig bad_seg = three_device_config();
  bad_seg.devices[2].segment = 2;
  EXPECT_THROW(runtime::SocPlatform{std::move(bad_seg)}, SpliceError);

  runtime::SocConfig bad_width = three_device_config();
  bad_width.devices[1].spec.target.bus_width = 64;
  EXPECT_THROW(runtime::SocPlatform{std::move(bad_width)}, SpliceError);
}

TEST(SocAddressMap, WindowsAllocateInDeviceOrder) {
  runtime::SocPlatform soc(three_device_config());
  // alpha: root window 0; beta: next root window; gamma: behind the bridge.
  EXPECT_EQ(soc.device_base(0), 0u);
  EXPECT_EQ(soc.device_base(1), 2u);  // alpha has 1 instance + status slot
  EXPECT_EQ(soc.device_segment(2), 1u);
  ASSERT_NE(soc.bridge(), nullptr);
  // gamma's base sits inside the bridge window on the root bus.
  EXPECT_GE(soc.device_base(2), 4u);
  EXPECT_LT(soc.device_base(2), soc.root().fid_limit());
  EXPECT_EQ(soc.opb()->fid_limit(), 3u);  // gamma: 2 instances' slots + status
}

// ---------------------------------------------------------------------------
// Cross-device calls.

TEST(SocCalls, EveryDeviceAnswersAcrossSegments) {
  runtime::SocPlatform soc(three_device_config());
  EXPECT_EQ(soc.call(0, "dbl", {{21}}).outputs.at(0), 42u);
  EXPECT_EQ(soc.call(1, "tpl", {{10}}).outputs.at(0), 30u);
  const runtime::CallResult far = soc.call(2, "qdr", {{11}});
  EXPECT_EQ(far.outputs.at(0), 44u);
  EXPECT_GT(soc.bridge()->grants(), 0u);
  EXPECT_EQ(soc.bridge()->timeouts(), 0u);
  EXPECT_TRUE(soc.clean()) << soc.violations().front();
}

TEST(SocCalls, BridgedCallSlowerThanRootCall) {
  runtime::SocPlatform soc(three_device_config());
  const auto root = soc.call(0, "dbl", {{5}});
  const auto far = soc.call(2, "qdr", {{5}});
  EXPECT_GT(far.bus_cycles, root.bus_cycles);
}

TEST(SocCalls, InterleavedCallsKeepDevicesIndependent) {
  runtime::SocPlatform soc(three_device_config());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(soc.call(0, "dbl", {{std::uint64_t(i)}}).outputs.at(0),
              std::uint64_t(i) * 2);
    EXPECT_EQ(soc.call(2, "qdr", {{std::uint64_t(i)}}).outputs.at(0),
              std::uint64_t(i) * 4);
    EXPECT_EQ(soc.call(1, "tpl", {{std::uint64_t(i)}}).outputs.at(0),
              std::uint64_t(i) * 3);
  }
  EXPECT_TRUE(soc.clean()) << soc.violations().front();
}

// ---------------------------------------------------------------------------
// Nowait completion: polled and interrupt-driven, on both segments.

TEST(SocNowait, PolledCompletionWaitOnRootSegment) {
  runtime::SocPlatform soc(three_device_config());
  soc.call(1, "slow", {{7}});
  const auto wait = soc.wait_completion(1, "slow");
  EXPECT_GT(wait.bus_cycles, 0u);
  EXPECT_EQ(soc.cpu(0).interrupts_taken(), 0u);
  EXPECT_GT(soc.cpu(0).polls_performed(), 0u);
  EXPECT_TRUE(soc.clean()) << soc.violations().front();
}

TEST(SocNowait, IrqCompletionWaitAcrossBridge) {
  runtime::SocPlatform soc(three_device_config(1, /*irq=*/true));
  soc.call(2, "far", {{9}});
  const auto wait = soc.wait_completion(2, "far", 0, /*irq=*/true);
  EXPECT_GT(wait.bus_cycles, 0u);
  EXPECT_EQ(soc.cpu(0).interrupts_taken(), 1u);
  // The IRQ sleep replaces the spin: exactly one status read confirms.
  EXPECT_EQ(soc.cpu(0).polls_performed(), 1u);
  EXPECT_TRUE(soc.clean()) << soc.violations().front();
  // The ack write cleared the latch, so the line must have dropped.
  soc.sim().step(8);
  EXPECT_FALSE(soc.irq_line()->high());
}

TEST(SocNowait, IrqBeforeWaitStillCompletes) {
  runtime::SocPlatform soc(three_device_config(1, /*irq=*/true));
  soc.call(1, "slow", {{3}});
  soc.sim().step(400);  // calculation done long before anyone waits
  EXPECT_TRUE(soc.irq_line()->high());
  const auto wait = soc.wait_completion(1, "slow", 0, /*irq=*/true);
  EXPECT_EQ(soc.cpu(0).interrupts_taken(), 1u);
  EXPECT_LT(wait.bus_cycles, 200u);  // no re-wait: the latch was already up
  soc.sim().step(8);
  EXPECT_FALSE(soc.irq_line()->high());
  EXPECT_TRUE(soc.clean()) << soc.violations().front();
}

TEST(SocNowait, ConcurrentNowaitsBothSegmentsBothComplete) {
  runtime::SocPlatform soc(three_device_config(1, /*irq=*/true));
  soc.call(1, "slow", {{1}});
  soc.call(2, "far", {{2}});
  soc.wait_completion(1, "slow", 0, /*irq=*/true);
  soc.wait_completion(2, "far", 0, /*irq=*/true);
  EXPECT_EQ(soc.cpu(0).interrupts_taken(), 2u);
  soc.sim().step(8);
  EXPECT_FALSE(soc.irq_line()->high());
  EXPECT_TRUE(soc.clean()) << soc.violations().front();
}

// ---------------------------------------------------------------------------
// Multi-master contention.

TEST(SocContention, TwoMastersBothCompleteThroughTheMux) {
  runtime::SocPlatform soc(three_device_config(/*masters=*/2));
  ASSERT_NE(soc.mux(), nullptr);
  soc.start_call(0, "dbl", {{4}}, 0, /*master=*/0);
  soc.start_call(1, "tpl", {{4}}, 0, /*master=*/1);
  soc.drain();
  EXPECT_GT(soc.mux()->grants(0), 0u);
  EXPECT_GT(soc.mux()->grants(1), 0u);
  EXPECT_GT(soc.mux()->contended_cycles(), 0u);
  EXPECT_TRUE(soc.clean()) << soc.violations().front();
}

TEST(SocContention, SingleMasterBypassesTheMux) {
  runtime::SocPlatform soc(three_device_config(/*masters=*/1));
  EXPECT_EQ(soc.mux(), nullptr);
  EXPECT_EQ(soc.master_count(), 1u);
}

TEST(SocContention, ContentionCostsCyclesVersusSerial) {
  // Same two calls, serial on one master vs concurrent on two masters:
  // the concurrent run must arbitrate, and both finish.
  runtime::SocPlatform serial(three_device_config(1));
  const std::uint64_t t0 = serial.sim().cycle();
  serial.call(0, "dbl", {{4}});
  serial.call(1, "tpl", {{4}});
  const std::uint64_t serial_cycles = serial.sim().cycle() - t0;

  runtime::SocPlatform conc(three_device_config(2));
  conc.start_call(0, "dbl", {{4}}, 0, 0);
  conc.start_call(1, "tpl", {{4}}, 0, 1);
  const std::uint64_t conc_cycles = conc.drain();
  // Word-serialized root bus: concurrency cannot beat the serial sum by
  // much, but it must at least complete and overlap the CPU-side gaps.
  EXPECT_LE(conc_cycles, serial_cycles + 64);
  EXPECT_TRUE(conc.clean());
}

// ---------------------------------------------------------------------------
// Cross-device checker axioms (broken-bridge variants).

TEST(SocCheckerAxioms, WildBridgeRequestFlagged) {
  runtime::SocPlatform soc(three_device_config());
  soc.bridge()->inject_fault(bus::PlbOpbBridge::Fault::WildRequest, 4);
  soc.sim().step(64);
  ASSERT_FALSE(soc.clean());
  const std::string v = soc.violations().front();
  EXPECT_NE(v.find("no bridge grant"), std::string::npos) << v;
}

TEST(SocCheckerAxioms, PhantomIrqFlagged) {
  runtime::SocPlatform soc(three_device_config(1, /*irq=*/true));
  soc.bridge()->inject_fault(bus::PlbOpbBridge::Fault::PhantomIrq, 4);
  soc.sim().step(64);
  ASSERT_FALSE(soc.clean());
  const std::string v = soc.violations().front();
  EXPECT_NE(v.find("phantom IRQ"), std::string::npos) << v;
}

TEST(SocCheckerAxioms, HealthyTrafficRaisesNoAxiom) {
  runtime::SocPlatform soc(three_device_config(2, /*irq=*/true));
  soc.call(2, "qdr", {{3}});
  soc.call(2, "far", {{3}});
  soc.wait_completion(2, "far", 0, /*irq=*/true);
  soc.sim().step(64);
  EXPECT_TRUE(soc.clean()) << soc.violations().front();
}

// ---------------------------------------------------------------------------
// Backend lockstep: the decoded SoC streams must be byte-identical.

struct SocRun {
  std::string bus_stream;
  std::string timeline_stream;
  std::uint64_t transactions = 0;
  std::vector<std::uint64_t> outputs;
};

SocRun run_scenario(rtl::Simulator::Backend backend) {
  runtime::SocPlatform soc(three_device_config(1, /*irq=*/true));
  soc.sim().set_backend(backend);
  obs::SocObserver observer(soc);

  SocRun run;
  std::size_t index = 0;
  auto call = [&](std::size_t dev, const std::string& fn,
                  std::uint64_t arg) {
    observer.begin_call(fn, index++);
    const auto r = soc.call(dev, fn, {{arg}});
    observer.end_call();
    if (!r.outputs.empty()) run.outputs.push_back(r.outputs.front());
  };
  call(0, "dbl", 21);
  call(2, "qdr", 5);
  call(1, "slow", 7);
  observer.begin_call("slow.wait", index++);
  soc.wait_completion(1, "slow", 0, /*irq=*/true);
  observer.end_call();
  call(2, "far", 3);
  observer.begin_call("far.wait", index++);
  soc.wait_completion(2, "far", 0, /*irq=*/true);
  observer.end_call();
  call(1, "tpl", 10);
  soc.sim().step(64);

  EXPECT_TRUE(soc.clean()) << soc.violations().front();
  run.bus_stream = observer.bus_stream();
  run.timeline_stream = observer.timeline_stream();
  run.transactions = observer.transactions();
  return run;
}

TEST(SocLockstep, DecodedStreamsByteIdenticalAcrossBackends) {
  const SocRun interp = run_scenario(rtl::Simulator::Backend::kInterp);
  const SocRun compiled = run_scenario(rtl::Simulator::Backend::kCompiled);
  EXPECT_GT(interp.transactions, 0u);
  EXPECT_EQ(interp.outputs, compiled.outputs);
  EXPECT_EQ(interp.transactions, compiled.transactions);
  EXPECT_EQ(interp.bus_stream, compiled.bus_stream);
  EXPECT_EQ(interp.timeline_stream, compiled.timeline_stream);
}

}  // namespace
