// The Splice command-line tool — the user-facing face of the thesis' code
// generator (Figure 1.1): specification files in, the complete hardware
// and software interface file set out, written under a subdirectory named
// after each device (§3.2.3).
//
// Usage:
//   splice <spec-file>... [options]
//     -o <dir>     output directory (default: current directory)
//     --jobs N     compile specs and modules on N parallel workers
//     --cache-dir <dir>  content-addressed artifact cache location
//                  (default: $SPLICE_CACHE_DIR when set, else disabled)
//     --no-cache   disable the artifact cache entirely
//     --gen-stats  print pipeline statistics (cache hits/misses, timing)
//     --linux      generate Linux mmap-based drivers (thesis §10.2)
//     --print      dump every generated file to stdout instead of disk
//     --list       list generated filenames only
//     --buses      list the registered interface libraries and exit
//     --lint       check-only mode: elaborate and lint the generated
//                  hardware ASTs, print a summary, write nothing
//     --sim-stats [N]  elaborate the device on the virtual platform, run N
//                  idle cycles (default 2000) and print the simulation
//                  kernel's instrumentation counters
//     -h, --help   this text
//
// Batch mode: several spec files compile concurrently on the --jobs pool;
// each spec's report (its diagnostics, then its file listing) prints
// contiguously in command-line order, never interleaved.
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "adapters/registry.hpp"
#include "core/artifact_cache.hpp"
#include "core/splice.hpp"
#include "rtl/simulator.hpp"
#include "runtime/platform.hpp"
#include "support/job_pool.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "Splice: a standardized peripheral logic and interface creation "
      "engine\n"
      "usage: %s <spec-file>... [options]\n"
      "  -o <dir>     output directory (default: .)\n"
      "  --jobs N     compile specs/modules on N parallel workers\n"
      "  --cache-dir <dir>  artifact cache location (default:\n"
      "               $SPLICE_CACHE_DIR when set, else disabled)\n"
      "  --no-cache   disable the artifact cache\n"
      "  --gen-stats  print pipeline statistics after the run\n"
      "  --linux      generate Linux mmap-based drivers\n"
      "  --print      dump generated files to stdout\n"
      "  --list       list generated filenames only\n"
      "  --buses      list registered interface libraries and exit\n"
      "  --lint       verify the generated hardware (AST lint) and exit\n"
      "               without writing files\n"
      "  --sim-stats [N]  simulate N idle cycles (default 2000) and print\n"
      "               the kernel instrumentation counters\n"
      "  -h, --help   show this help\n",
      argv0);
}

int list_buses() {
  std::printf("Registered interface libraries (thesis §7.2 naming):\n");
  for (const auto& bus : splice::adapters::AdapterRegistry::instance().names()) {
    const auto* adapter =
        splice::adapters::AdapterRegistry::instance().find(bus);
    const auto caps = adapter->capabilities();
    std::string widths;
    for (unsigned w : caps.allowed_widths) {
      if (!widths.empty()) widths += "/";
      widths += std::to_string(w);
    }
    std::printf("  %-28s widths %-9s %s%s%s%s\n",
                splice::adapters::library_filename(bus).c_str(),
                widths.c_str(), caps.memory_mapped ? "mapped " : "opcode ",
                caps.supports_dma ? "dma " : "",
                caps.supports_burst ? "burst " : "",
                caps.strictly_synchronous ? "strictly-sync" : "");
  }
  return 0;
}

/// Parse a decimal option argument; exits-with-2 semantics live in main.
std::optional<std::uint64_t> parse_count(const char* text) {
  char* end = nullptr;
  errno = 0;
  const std::uint64_t value = std::strtoull(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') return std::nullopt;
  return value;
}

struct CliOptions {
  std::string out_dir = ".";
  bool print_files = false;
  bool list_only = false;
  bool lint_only = false;
  bool sim_stats = false;
  bool gen_stats = false;
  std::uint64_t sim_cycles = 2000;
  unsigned jobs = 1;
  splice::EngineOptions engine;
};

/// Everything one spec's compile produced, buffered so batch output prints
/// per-spec in input order regardless of completion order.
struct SpecResult {
  std::string out;   ///< stdout block
  std::string err;   ///< stderr block (diagnostics)
  int exit_code = 0;
};

void compile_one(const std::string& spec_path, const CliOptions& opt,
                 const splice::Engine& engine, splice::ArtifactCache* cache,
                 SpecResult& res) {
  std::ifstream in(spec_path);
  if (!in) {
    res.err = "error: cannot read '" + spec_path + "'\n";
    res.exit_code = 2;
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string spec_text = buffer.str();

  splice::DiagnosticEngine diags;

  // Modes that need the elaborated spec (lint summary, simulation) bypass
  // the cache: a cache hit deliberately skips elaboration.
  if (opt.lint_only || opt.sim_stats) {
    auto artifacts = engine.generate(spec_text, diags);
    res.err = diags.render();
    if (!artifacts) {
      res.err += "error: interface generation aborted (" +
                 std::to_string(diags.error_count()) + " error(s))\n";
      res.exit_code = 1;
      return;
    }
    if (opt.lint_only) {
      // Generation already linted every hardware AST (the engine refuses
      // to proceed on findings), so reaching this point means a clean
      // bill.
      res.out = "lint: device '" + artifacts->spec.target.device_name +
                "': " +
                std::to_string(artifacts->spec.functions.size() + 1) +
                " hardware module(s) clean, nothing written\n";
      return;
    }
    // Elaborate the validated spec onto the virtual platform (default stub
    // behaviours), let the device idle for the requested cycles and report
    // what the kernel actually did.
    try {
      splice::runtime::VirtualPlatform vp(artifacts->spec,
                                          splice::elab::BehaviorMap{});
      vp.sim().step(opt.sim_cycles);
      res.out = splice::rtl::render_stats(vp.sim());
    } catch (const splice::SpliceError& e) {
      res.err += std::string("error: simulation failed: ") + e.what() + "\n";
      res.exit_code = 1;
    }
    return;
  }

  auto artifacts = engine.generate_cached(spec_text, diags, cache);
  res.err = diags.render();
  if (!artifacts) {
    res.err += "error: interface generation aborted (" +
               std::to_string(diags.error_count()) + " error(s))\n";
    res.exit_code = 1;
    return;
  }

  if (opt.list_only) {
    for (const auto& name : artifacts->filenames()) {
      res.out += name + "\n";
    }
    return;
  }
  if (opt.print_files) {
    auto dump = [&res](const splice::codegen::GeneratedFile& f) {
      res.out += "========== " + f.filename + " ==========\n" + f.content +
                 "\n";
    };
    for (const auto& f : artifacts->hardware) dump(f);
    for (const auto& f : artifacts->software) dump(f);
    return;
  }

  std::string dir;
  try {
    dir = artifacts->write_to(opt.out_dir);
  } catch (const splice::SpliceError& e) {
    res.err += std::string("error: ") + e.what() + "\n";
    res.exit_code = 1;
    return;
  }
  res.out = "device '" + artifacts->device_name + "': " +
            std::to_string(artifacts->filenames().size()) +
            " files written to " + dir + "\n";
  for (const auto& name : artifacts->filenames()) {
    res.out += "  " + name + "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> spec_paths;
  CliOptions opt;
  std::string cache_dir;
  bool no_cache = false;
  if (const char* env = std::getenv("SPLICE_CACHE_DIR")) cache_dir = env;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    }
    if (arg == "--buses") return list_buses();
    if (arg == "--linux") {
      opt.engine.driver_os = splice::drivergen::DriverOs::Linux;
    } else if (arg == "--print") {
      opt.print_files = true;
    } else if (arg == "--list") {
      opt.list_only = true;
    } else if (arg == "--lint") {
      opt.lint_only = true;
    } else if (arg == "--gen-stats") {
      opt.gen_stats = true;
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--cache-dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --cache-dir needs a directory\n");
        return 2;
      }
      cache_dir = argv[++i];
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --jobs needs a worker count\n");
        return 2;
      }
      const auto n = parse_count(argv[++i]);
      if (!n || *n == 0 || *n > 1024) {
        std::fprintf(stderr,
                     "error: --jobs expects a worker count between 1 and "
                     "1024, got '%s'\n",
                     argv[i]);
        return 2;
      }
      opt.jobs = static_cast<unsigned>(*n);
    } else if (arg == "--sim-stats") {
      opt.sim_stats = true;
      // Optional numeric cycle count; anything else is the next argument.
      if (i + 1 < argc && argv[i + 1][0] >= '0' && argv[i + 1][0] <= '9') {
        const char* text = argv[++i];
        char* end = nullptr;
        errno = 0;
        opt.sim_cycles = std::strtoull(text, &end, 10);
        if (errno == ERANGE) {
          std::fprintf(stderr,
                       "error: --sim-stats cycle count '%s' is out of "
                       "range\n",
                       text);
          return 2;
        }
        if (end == text || *end != '\0') {
          std::fprintf(stderr,
                       "error: --sim-stats expects a cycle count, got "
                       "'%s'\n",
                       text);
          return 2;
        }
      }
    } else if (arg == "-o") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: -o needs a directory\n");
        return 2;
      }
      opt.out_dir = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else {
      spec_paths.push_back(arg);
    }
  }
  if (spec_paths.empty()) {
    usage(argv[0]);
    return 2;
  }

  std::unique_ptr<splice::ArtifactCache> cache;
  if (!no_cache && !cache_dir.empty()) {
    cache = std::make_unique<splice::ArtifactCache>(cache_dir);
  }

  // One shared pool: per-spec fan-out (batch) and per-module fan-out
  // (inside the engine) both draw from it, so total concurrency stays at
  // the requested worker count.  jobs-1 threads + the main thread.
  splice::support::JobPool pool(opt.jobs > 1 ? opt.jobs - 1 : 0);
  opt.engine.pool = opt.jobs > 1 ? &pool : nullptr;
  opt.engine.jobs = opt.jobs;
  splice::Engine engine(splice::adapters::AdapterRegistry::instance(),
                        opt.engine);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<SpecResult> results(spec_paths.size());
  splice::support::parallel_for(
      opt.engine.pool, spec_paths.size(), [&](std::size_t i) {
        compile_one(spec_paths[i], opt, engine, cache.get(), results[i]);
      });
  const auto t1 = std::chrono::steady_clock::now();

  // Aggregate per-spec, in input order: a spec's diagnostics and report
  // always print contiguously, prefixed with the file name when several
  // specs were given.
  int exit_code = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SpecResult& r = results[i];
    if (!r.err.empty()) {
      if (spec_paths.size() > 1) {
        std::fprintf(stderr, "== %s ==\n", spec_paths[i].c_str());
      }
      std::fprintf(stderr, "%s", r.err.c_str());
    }
    if (!r.out.empty()) {
      std::fprintf(stdout, "%s", r.out.c_str());
    }
    if (r.exit_code > exit_code) exit_code = r.exit_code;
  }

  if (opt.gen_stats) {
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::size_t failed = 0;
    for (const auto& r : results) {
      if (r.exit_code != 0) ++failed;
    }
    std::printf("== generation stats ==\n");
    std::printf("specs:      %zu (%zu ok, %zu failed)\n", results.size(),
                results.size() - failed, failed);
    std::printf("jobs:       %u\n", opt.jobs);
    if (cache) {
      const splice::CacheStats s = cache->stats();
      std::printf("cache:      enabled (%s)\n", cache->dir().c_str());
      std::printf("  hits:     %llu\n",
                  static_cast<unsigned long long>(s.hits));
      std::printf("  misses:   %llu\n",
                  static_cast<unsigned long long>(s.misses));
      std::printf("  stores:   %llu\n",
                  static_cast<unsigned long long>(s.stores));
      std::printf("  corrupt:  %llu\n",
                  static_cast<unsigned long long>(s.corrupt));
    } else {
      std::printf("cache:      disabled\n");
    }
    std::printf("elapsed:    %.2f ms (%.1f specs/s)\n", ms,
                ms > 0.0 ? 1000.0 * static_cast<double>(results.size()) / ms
                         : 0.0);
  }
  return exit_code;
}
