// The Splice command-line tool — the user-facing face of the thesis' code
// generator (Figure 1.1): specification files in, the complete hardware
// and software interface file set out, written under a subdirectory named
// after each device (§3.2.3).
//
// Usage:
//   splice <spec-file>... [options]
//     -o <dir>     output directory (default: current directory)
//     --jobs N     compile specs and modules on N parallel workers
//     --cache-dir <dir>  content-addressed artifact cache location
//                  (default: $SPLICE_CACHE_DIR when set, else disabled)
//     --no-cache   disable the artifact cache entirely
//     --gen-stats  print pipeline statistics (cache hits/misses, timing)
//     --linux      generate Linux mmap-based drivers (thesis §10.2)
//     --print      dump every generated file to stdout instead of disk
//     --list       list generated filenames only
//     --buses      list the registered interface libraries and exit
//     --lint       check-only mode: elaborate and lint the generated
//                  hardware ASTs, print a summary, write nothing
//     --sim-stats [N]  elaborate the device on the virtual platform, run N
//                  idle cycles (default 2000) and print the simulation
//                  kernel's instrumentation counters
//     --sim-backend {interp,compiled}  simulation backend for --sim-stats:
//                  the dynamic-worklist interpreter (default) or the
//                  statically scheduled compiled step program
//     --sim-trace-out FILE  elaborate the device, replay one driver call
//                  per declared function and write the decoded activity —
//                  driver calls, ICOB phases, bus transactions, IRQ/DMA
//                  events — as Chrome trace-event JSON on a simulated-time
//                  axis (1 cycle = 1 us).  With several specs the device
//                  name is appended to FILE.
//     --sim-profile  enable hotspot profiling (per-module wake counts,
//                  per-region execution counts) during the simulation and
//                  print the profile report
//     --platform   SoC platform mode: assemble ALL spec files into one
//                  multi-device platform instead of compiling them
//                  separately — plb specs share the root bus, opb specs
//                  sit on a sub-segment behind the PLB<->OPB bridge
//                  (other bus types are not routable).  Replays one
//                  driver call per declared function (nowait calls get a
//                  completion wait), prints the topology and traffic
//                  summary, and composes with --sim-backend, --sim-stats,
//                  --sim-profile and --sim-trace-out (which then writes
//                  the decoded per-device bus streams and per-master call
//                  timelines as text).
//     --platform-masters N  number of contending bus masters on the root
//                  segment in --platform mode (1-8, default 1)
//     --platform-irq  wire the interrupt fabric in --platform mode:
//                  per-device IRQ lines, bridge crossing, CPU line;
//                  master 0 then sleeps on interrupts for nowait
//                  completion waits instead of polling
//     --stats-format {text,json}  how --gen-stats / --sim-stats render:
//                  the human tables (default) or one machine-readable JSON
//                  object on stdout
//     --trace-out FILE  record a span trace of the whole run and write it
//                  as Chrome trace-event JSON (load in Perfetto)
//     -h, --help   this text
//
// Batch mode: several spec files compile concurrently on the --jobs pool;
// each spec's report (its diagnostics, then its file listing) prints
// contiguously in command-line order, never interleaved.
//
// Telemetry: one MetricsRegistry (owned here) collects the engine's
// per-phase timings and the cache counters; --trace-out installs the
// process-wide tracer around the batch.  Both are pure observation — the
// generated artifact bytes are identical with or without them.
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "adapters/registry.hpp"
#include "core/artifact_cache.hpp"
#include "core/splice.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "rtl/observe/platform_observer.hpp"
#include "rtl/observe/profile.hpp"
#include "rtl/observe/soc_observer.hpp"
#include "rtl/simulator.hpp"
#include "runtime/platform.hpp"
#include "runtime/soc.hpp"
#include "support/job_pool.hpp"
#include "support/strings.hpp"
#include "support/telemetry.hpp"

namespace telemetry = splice::support::telemetry;

namespace {

void usage(const char* argv0) {
  std::printf(
      "Splice: a standardized peripheral logic and interface creation "
      "engine\n"
      "usage: %s <spec-file>... [options]\n"
      "  -o <dir>     output directory (default: .)\n"
      "  --jobs N     compile specs/modules on N parallel workers\n"
      "  --cache-dir <dir>  artifact cache location (default:\n"
      "               $SPLICE_CACHE_DIR when set, else disabled)\n"
      "  --no-cache   disable the artifact cache\n"
      "  --gen-stats  print pipeline statistics after the run\n"
      "  --linux      generate Linux mmap-based drivers\n"
      "  --print      dump generated files to stdout\n"
      "  --list       list generated filenames only\n"
      "  --buses      list registered interface libraries and exit\n"
      "  --lint       verify the generated hardware (AST lint) and exit\n"
      "               without writing files\n"
      "  --sim-stats [N]  simulate N idle cycles (default 2000) and print\n"
      "               the kernel instrumentation counters\n"
      "  --sim-backend {interp,compiled}  backend for --sim-stats\n"
      "               (default interp)\n"
      "  --sim-trace-out FILE  replay one driver call per function and\n"
      "               write the decoded bus/driver activity as Chrome\n"
      "               trace-event JSON on a simulated-time axis\n"
      "  --sim-profile  profile the simulation (module wakes, compiled\n"
      "               regions) and print the hotspot report\n"
      "  --platform   assemble all specs into ONE multi-device SoC\n"
      "               platform (plb specs on the root bus, opb specs\n"
      "               behind the bridge), replay one call per function\n"
      "               and print the topology/traffic summary\n"
      "  --platform-masters N  contending root-bus masters in --platform\n"
      "               mode (1-8, default 1)\n"
      "  --platform-irq  wire the interrupt fabric in --platform mode\n"
      "  --stats-format {text,json}  stats rendering: human tables\n"
      "               (default) or one JSON object on stdout\n"
      "  --trace-out FILE  write a Chrome trace-event JSON span trace of\n"
      "               the run (load in Perfetto / chrome://tracing)\n"
      "  -h, --help   show this help\n",
      argv0);
}

int list_buses() {
  std::printf("Registered interface libraries (thesis §7.2 naming):\n");
  for (const auto& bus : splice::adapters::AdapterRegistry::instance().names()) {
    const auto* adapter =
        splice::adapters::AdapterRegistry::instance().find(bus);
    const auto caps = adapter->capabilities();
    std::string widths;
    for (unsigned w : caps.allowed_widths) {
      if (!widths.empty()) widths += "/";
      widths += std::to_string(w);
    }
    std::printf("  %-28s widths %-9s %s%s%s%s\n",
                splice::adapters::library_filename(bus).c_str(),
                widths.c_str(), caps.memory_mapped ? "mapped " : "opcode ",
                caps.supports_dma ? "dma " : "",
                caps.supports_burst ? "burst " : "",
                caps.strictly_synchronous ? "strictly-sync" : "");
  }
  return 0;
}

/// Parse a decimal option argument; exits-with-2 semantics live in main.
std::optional<std::uint64_t> parse_count(const char* text) {
  char* end = nullptr;
  errno = 0;
  const std::uint64_t value = std::strtoull(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') return std::nullopt;
  return value;
}

struct CliOptions {
  std::string out_dir = ".";
  bool print_files = false;
  bool list_only = false;
  bool lint_only = false;
  bool sim_stats = false;
  bool gen_stats = false;
  bool sim_profile = false;
  std::string sim_trace_out;
  /// --trace-out is active: collect the simulated-time events so they can
  /// ride in the wall-clock trace file (distinct pid) too.
  bool embed_sim_trace = false;
  telemetry::Format stats_format = telemetry::Format::Text;
  std::uint64_t sim_cycles = 2000;
  splice::rtl::Simulator::Backend sim_backend =
      splice::rtl::Simulator::Backend::kInterp;
  bool platform = false;
  unsigned platform_masters = 1;
  bool platform_irq = false;
  unsigned jobs = 1;
  splice::EngineOptions engine;

  /// Any of the simulation modes: they share the elaborate-and-step path.
  [[nodiscard]] bool sim_requested() const {
    return sim_stats || sim_profile || !sim_trace_out.empty();
  }
};

/// Everything one spec's compile produced, buffered so batch output prints
/// per-spec in input order regardless of completion order.  The structured
/// fields feed the --stats-format json report and the per-spec cache lines.
struct SpecResult {
  std::string out;   ///< stdout block (text mode)
  std::string err;   ///< stderr block (diagnostics)
  int exit_code = 0;
  std::string device;              ///< device name once generation succeeded
  std::vector<std::string> files;  ///< generated filenames
  /// This spec's own cache outcome (non-cumulative: generate_cached fills
  /// it from the call's own load/store, so concurrent batch specs never
  /// bleed into each other's numbers).
  splice::CacheStats cache;
  bool cache_used = false;
  std::string sim_json;       ///< render_stats(..., Json) when --sim-stats
  std::string profile_json;   ///< render_profile(..., Json) when --sim-profile
  std::string sim_trace;      ///< full trace file body for --sim-trace-out
  std::string sim_trace_events;  ///< pid-2 events for --trace-out embedding
};

void compile_one(const std::string& spec_path, const CliOptions& opt,
                 const splice::Engine& engine, splice::ArtifactCache* cache,
                 SpecResult& res) {
  // One span per spec: in a --jobs batch these land on worker threads and
  // parent under the splice.batch root via parallel_for's propagation.
  const std::string span_name = "spec:" + spec_path;
  telemetry::Span span(span_name, "cli");
  const bool json = opt.stats_format == telemetry::Format::Json;
  std::ifstream in(spec_path);
  if (!in) {
    res.err = "error: cannot read '" + spec_path + "'\n";
    res.exit_code = 2;
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string spec_text = buffer.str();

  splice::DiagnosticEngine diags;

  // Modes that need the elaborated spec (lint summary, simulation) bypass
  // the cache: a cache hit deliberately skips elaboration.
  if (opt.lint_only || opt.sim_requested()) {
    auto artifacts = engine.generate(spec_text, diags);
    res.err = diags.render();
    if (!artifacts) {
      res.err += "error: interface generation aborted (" +
                 std::to_string(diags.error_count()) + " error(s))\n";
      res.exit_code = 1;
      return;
    }
    res.device = artifacts->spec.target.device_name;
    res.files = artifacts->filenames();
    if (opt.lint_only) {
      // Generation already linted every hardware AST (the engine refuses
      // to proceed on findings), so reaching this point means a clean
      // bill.
      res.out = "lint: device '" + artifacts->spec.target.device_name +
                "': " +
                std::to_string(artifacts->spec.functions.size() + 1) +
                " hardware module(s) clean, nothing written\n";
      return;
    }
    // Elaborate the validated spec onto the virtual platform (default stub
    // behaviours), let the device idle for the requested cycles and report
    // what the kernel actually did.
    try {
      telemetry::Span sim_span("sim.idle", "sim");
      sim_span.arg("cycles", opt.sim_cycles);
      splice::runtime::VirtualPlatform vp(artifacts->spec,
                                          splice::elab::BehaviorMap{});
      vp.sim().set_backend(opt.sim_backend);
      if (opt.sim_profile) vp.sim().set_profiling(true);

      // --sim-trace-out (or --trace-out alongside a sim mode): attach the
      // observability layer and replay one driver call per declared
      // function so the trace shows real bus activity, not just idling.
      std::unique_ptr<splice::rtl::observe::PlatformObserver> observer;
      if (!opt.sim_trace_out.empty() || opt.embed_sim_trace) {
        observer =
            std::make_unique<splice::rtl::observe::PlatformObserver>(vp);
        const std::size_t calls =
            splice::rtl::observe::exercise_device(vp, *observer);
        sim_span.arg("driver_calls", calls);
      }
      vp.sim().step(opt.sim_cycles);

      if (observer != nullptr) {
        if (!opt.sim_trace_out.empty()) res.sim_trace = observer->trace_json();
        if (opt.embed_sim_trace) {
          res.sim_trace_events = observer->trace_events(/*pid=*/2);
        }
      }
      if (opt.sim_profile) {
        if (json) {
          res.profile_json = splice::rtl::observe::render_profile(
              vp.sim(), telemetry::Format::Json);
        } else {
          res.out += splice::rtl::observe::render_profile(vp.sim());
        }
      }
      if (opt.sim_stats) {
        if (json) {
          res.sim_json = splice::rtl::render_stats(vp.sim(),
                                                   telemetry::Format::Json);
        } else {
          res.out += splice::rtl::render_stats(vp.sim());
        }
      }
    } catch (const splice::SpliceError& e) {
      res.err += std::string("error: simulation failed: ") + e.what() + "\n";
      res.exit_code = 1;
    }
    return;
  }

  res.cache_used = cache != nullptr;
  auto artifacts = engine.generate_cached(spec_text, diags, cache, &res.cache);
  res.err = diags.render();
  if (!artifacts) {
    res.err += "error: interface generation aborted (" +
               std::to_string(diags.error_count()) + " error(s))\n";
    res.exit_code = 1;
    return;
  }

  res.device = artifacts->device_name;
  res.files = artifacts->filenames();

  if (opt.list_only) {
    for (const auto& name : artifacts->filenames()) {
      res.out += name + "\n";
    }
    return;
  }
  if (opt.print_files) {
    auto dump = [&res](const splice::codegen::GeneratedFile& f) {
      res.out += "========== " + f.filename + " ==========\n" + f.content +
                 "\n";
    };
    for (const auto& f : artifacts->hardware) dump(f);
    for (const auto& f : artifacts->software) dump(f);
    return;
  }

  std::string dir;
  try {
    telemetry::Span write_span("emit.write", "emit");
    write_span.arg("files", artifacts->filenames().size());
    const auto w0 = std::chrono::steady_clock::now();
    dir = artifacts->write_to(opt.out_dir);
    if (opt.engine.metrics != nullptr) {
      opt.engine.metrics->histogram("emit.write_us")
          .record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - w0)
                  .count()));
    }
  } catch (const splice::SpliceError& e) {
    res.err += std::string("error: ") + e.what() + "\n";
    res.exit_code = 1;
    return;
  }
  res.out = "device '" + artifacts->device_name + "': " +
            std::to_string(artifacts->filenames().size()) +
            " files written to " + dir + "\n";
  for (const auto& name : artifacts->filenames()) {
    res.out += "  " + name + "\n";
  }
}

/// One driver-call argument set per function, mirroring exercise_device's
/// deterministic values so platform traffic is reproducible run to run.
splice::drivergen::CallArgs default_args(const splice::ir::FunctionDecl& fn) {
  namespace ir = splice::ir;
  splice::drivergen::CallArgs args;
  for (std::size_t i = 0; i < fn.inputs.size(); ++i) {
    const ir::IoParam& p = fn.inputs[i];
    std::uint64_t count = 1;
    if (p.count_kind == ir::CountKind::Explicit) {
      count = p.explicit_count;
    } else if (p.count_kind == ir::CountKind::Implicit) {
      for (std::size_t j = 0; j < args.size(); ++j) {
        if (fn.inputs[j].name == p.index_var && !args[j].empty()) {
          count = args[j][0];
          break;
        }
      }
    }
    std::vector<std::uint64_t> vals;
    if (!p.is_array() && p.used_as_index) {
      vals.push_back(4);  // keeps implicit element counts small
    } else {
      for (std::uint64_t k = 0; k < count; ++k) {
        vals.push_back(0x2a + 31 * i + 7 * k);
      }
    }
    args.push_back(std::move(vals));
  }
  return args;
}

/// --platform: every positional spec becomes one device of a single SoC —
/// plb specs on the root bus, opb specs on the bridged sub-segment.  One
/// driver call per declared function (nowait calls followed by their
/// completion wait, interrupt-driven on master 0 when --platform-irq),
/// then the topology/traffic summary and any requested stats/profile/
/// decoded-stream reports.
int run_platform(const std::vector<std::string>& spec_paths,
                 const CliOptions& opt) {
  namespace runtime = splice::runtime;
  namespace observe = splice::rtl::observe;

  runtime::SocConfig config;
  for (const std::string& path : spec_paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "error: cannot read '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();

    splice::DiagnosticEngine diags;
    auto spec = splice::frontend::parse_spec(buffer.str(), diags);
    if (!spec.has_value() || !splice::ir::validate(*spec, diags)) {
      std::fprintf(stderr, "== %s ==\n%serror: spec rejected\n",
                   path.c_str(), diags.render().c_str());
      return 1;
    }
    const std::string& bus = spec->target.bus_type;
    runtime::SocDevice dev;
    if (bus == "plb") {
      dev.segment = 0;
    } else if (bus == "opb") {
      dev.segment = 1;
    } else {
      std::fprintf(stderr,
                   "error: %s: platform mode routes plb specs to the root "
                   "segment and opb specs behind the bridge; '%s' devices "
                   "are not routable\n",
                   path.c_str(), bus.c_str());
      return 2;
    }
    dev.spec = std::move(*spec);
    config.devices.push_back(std::move(dev));
  }
  config.masters = opt.platform_masters;
  config.irq = opt.platform_irq;

  try {
    runtime::SocPlatform soc(config);
    soc.sim().set_backend(opt.sim_backend);
    if (opt.sim_profile) soc.sim().set_profiling(true);
    observe::SocObserver observer(soc);

    // One call per declared function, masters round-robin; nowait calls
    // complete before the next one starts (the latch vector stays clean).
    std::size_t calls = 0;
    for (std::size_t d = 0; d < soc.device_count(); ++d) {
      for (const splice::ir::FunctionDecl& fn : soc.spec(d).functions) {
        const auto master =
            static_cast<unsigned>(calls % opt.platform_masters);
        observer.begin_call(fn.name, calls, master);
        soc.call(d, fn.name, default_args(fn), 0, master);
        if (!fn.blocking()) {
          soc.wait_completion(d, fn.name, 0,
                              opt.platform_irq && master == 0, master);
        }
        observer.end_call(master);
        ++calls;
      }
    }
    soc.sim().step(opt.sim_stats ? opt.sim_cycles : 64);

    std::printf("== platform ==\n");
    for (std::size_t d = 0; d < soc.device_count(); ++d) {
      const auto& spec = soc.spec(d);
      std::printf(
          "device %zu '%s': segment %u (%s), base slot %u, %zu function "
          "declaration(s)\n",
          d, spec.target.device_name.c_str(), soc.device_segment(d),
          soc.device_segment(d) == 0 ? "root plb" : "bridged opb",
          soc.device_base(d), spec.functions.size());
    }
    std::printf("masters:      %u%s\n", opt.platform_masters,
                opt.platform_masters > 1 ? " (round-robin mux)" : "");
    std::printf("irq fabric:   %s\n",
                opt.platform_irq ? "wired" : "absent (polled completion)");
    std::printf("driver calls: %zu\n", calls);
    std::printf("transactions: %llu\n",
                static_cast<unsigned long long>(observer.transactions()));
    std::printf("cycles:       %llu\n",
                static_cast<unsigned long long>(soc.sim().cycle()));
    if (soc.bridge() != nullptr) {
      std::printf("bridge:       %llu crossing(s), %llu timeout(s)\n",
                  static_cast<unsigned long long>(soc.bridge()->grants()),
                  static_cast<unsigned long long>(soc.bridge()->timeouts()));
    }

    if (!opt.sim_trace_out.empty()) {
      std::ofstream f(opt.sim_trace_out, std::ios::binary);
      f << observer.bus_stream() << observer.timeline_stream();
      f.flush();
      if (!f) {
        std::fprintf(stderr, "error: cannot write sim trace to '%s'\n",
                     opt.sim_trace_out.c_str());
        return 1;
      }
    }
    if (opt.sim_profile) {
      std::fputs(observe::render_profile(soc.sim()).c_str(), stdout);
    }
    if (opt.sim_stats) {
      std::fputs(splice::rtl::render_stats(soc.sim()).c_str(), stdout);
    }

    const auto violations = soc.violations();
    if (!violations.empty()) {
      for (const std::string& v : violations) {
        std::fprintf(stderr, "checker: %s\n", v.c_str());
      }
      return 1;
    }
  } catch (const splice::SpliceError& e) {
    std::fprintf(stderr, "error: platform simulation failed: %s\n",
                 e.what());
    return 1;
  }
  return 0;
}

/// The single --stats-format json object (stdout).  Key names are stable
/// API: generator, jobs, elapsed_ms, specs[].{file, exit_code, device,
/// files, cache, sim}, the shared cache totals and the metrics registry
/// snapshot.  Per-spec cache counters are each spec's own delta, not the
/// cumulative totals (see SpecResult::cache).
std::string render_json_stats(const std::vector<std::string>& spec_paths,
                              const std::vector<SpecResult>& results,
                              const CliOptions& opt, double elapsed_ms,
                              splice::ArtifactCache* cache,
                              const telemetry::MetricsRegistry& metrics) {
  namespace str = splice::str;
  std::string out = "{\"generator\": \"" +
                    std::string(splice::kGeneratorVersion) +
                    "\", \"jobs\": " + std::to_string(opt.jobs) +
                    ", \"elapsed_ms\": ";
  char ms[32];
  std::snprintf(ms, sizeof ms, "%.2f", elapsed_ms);
  out += ms;
  out += ", \"specs\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SpecResult& r = results[i];
    if (i != 0) out += ", ";
    out += "{\"file\": \"" + str::json_escape(spec_paths[i]) +
           "\", \"exit_code\": " + std::to_string(r.exit_code);
    if (!r.device.empty()) {
      out += ", \"device\": \"" + str::json_escape(r.device) + "\"";
    }
    if (!r.files.empty()) {
      out += ", \"files\": [";
      for (std::size_t k = 0; k < r.files.size(); ++k) {
        if (k != 0) out += ", ";
        out += "\"" + str::json_escape(r.files[k]) + "\"";
      }
      out += "]";
    }
    if (opt.gen_stats && r.cache_used) {
      out += ", \"cache\": {\"hits\": " + std::to_string(r.cache.hits) +
             ", \"misses\": " + std::to_string(r.cache.misses) +
             ", \"stores\": " + std::to_string(r.cache.stores) +
             ", \"corrupt\": " + std::to_string(r.cache.corrupt) + "}";
    }
    if (!r.sim_json.empty()) out += ", \"sim\": " + r.sim_json;
    if (!r.profile_json.empty()) out += ", \"profile\": " + r.profile_json;
    out += "}";
  }
  out += "]";
  if (opt.gen_stats) {
    if (cache != nullptr) {
      const splice::CacheStats s = cache->stats();
      out += ", \"cache\": {\"enabled\": true, \"dir\": \"" +
             str::json_escape(cache->dir()) +
             "\", \"hits\": " + std::to_string(s.hits) +
             ", \"misses\": " + std::to_string(s.misses) +
             ", \"stores\": " + std::to_string(s.stores) +
             ", \"corrupt\": " + std::to_string(s.corrupt) + "}";
    } else {
      out += ", \"cache\": {\"enabled\": false}";
    }
    out += ", \"metrics\": " + metrics.render(telemetry::Format::Json);
  }
  out += "}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> spec_paths;
  CliOptions opt;
  std::string cache_dir;
  std::string trace_out;
  bool no_cache = false;
  if (const char* env = std::getenv("SPLICE_CACHE_DIR")) cache_dir = env;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    }
    if (arg == "--buses") return list_buses();
    if (arg == "--linux") {
      opt.engine.driver_os = splice::drivergen::DriverOs::Linux;
    } else if (arg == "--print") {
      opt.print_files = true;
    } else if (arg == "--list") {
      opt.list_only = true;
    } else if (arg == "--lint") {
      opt.lint_only = true;
    } else if (arg == "--gen-stats") {
      opt.gen_stats = true;
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--cache-dir") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --cache-dir needs a directory\n");
        return 2;
      }
      cache_dir = argv[++i];
    } else if (arg == "--trace-out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --trace-out needs a file path\n");
        return 2;
      }
      trace_out = argv[++i];
    } else if (arg == "--stats-format") {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "error: --stats-format needs 'text' or 'json'\n");
        return 2;
      }
      const std::string value = argv[++i];
      if (value == "text") {
        opt.stats_format = telemetry::Format::Text;
      } else if (value == "json") {
        opt.stats_format = telemetry::Format::Json;
      } else {
        std::fprintf(stderr,
                     "error: --stats-format expects 'text' or 'json', got "
                     "'%s'\n",
                     value.c_str());
        return 2;
      }
    } else if (arg == "--jobs") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --jobs needs a worker count\n");
        return 2;
      }
      const auto n = parse_count(argv[++i]);
      if (!n || *n == 0 || *n > 1024) {
        std::fprintf(stderr,
                     "error: --jobs expects a worker count between 1 and "
                     "1024, got '%s'\n",
                     argv[i]);
        return 2;
      }
      opt.jobs = static_cast<unsigned>(*n);
    } else if (arg == "--sim-stats") {
      opt.sim_stats = true;
      // Optional numeric cycle count; anything else is the next argument.
      if (i + 1 < argc && argv[i + 1][0] >= '0' && argv[i + 1][0] <= '9') {
        const char* text = argv[++i];
        char* end = nullptr;
        errno = 0;
        opt.sim_cycles = std::strtoull(text, &end, 10);
        if (errno == ERANGE) {
          std::fprintf(stderr,
                       "error: --sim-stats cycle count '%s' is out of "
                       "range\n",
                       text);
          return 2;
        }
        if (end == text || *end != '\0') {
          std::fprintf(stderr,
                       "error: --sim-stats expects a cycle count, got "
                       "'%s'\n",
                       text);
          return 2;
        }
      }
    } else if (arg == "--sim-profile") {
      opt.sim_profile = true;
    } else if (arg == "--platform") {
      opt.platform = true;
    } else if (arg == "--platform-irq") {
      opt.platform_irq = true;
    } else if (arg == "--platform-masters") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --platform-masters needs a count\n");
        return 2;
      }
      const auto n = parse_count(argv[++i]);
      if (!n || *n == 0 || *n > 8) {
        std::fprintf(stderr,
                     "error: --platform-masters expects a master count "
                     "between 1 and 8, got '%s'\n",
                     argv[i]);
        return 2;
      }
      opt.platform_masters = static_cast<unsigned>(*n);
    } else if (arg == "--sim-trace-out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --sim-trace-out needs a file path\n");
        return 2;
      }
      opt.sim_trace_out = argv[++i];
    } else if (arg == "--sim-backend") {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "error: --sim-backend needs 'interp' or 'compiled'\n");
        return 2;
      }
      const std::string backend = argv[++i];
      if (backend == "interp") {
        opt.sim_backend = splice::rtl::Simulator::Backend::kInterp;
      } else if (backend == "compiled") {
        opt.sim_backend = splice::rtl::Simulator::Backend::kCompiled;
      } else {
        std::fprintf(stderr,
                     "error: --sim-backend expects 'interp' or 'compiled', "
                     "got '%s'\n",
                     backend.c_str());
        return 2;
      }
    } else if (arg == "-o") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: -o needs a directory\n");
        return 2;
      }
      opt.out_dir = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else {
      spec_paths.push_back(arg);
    }
  }
  if (spec_paths.empty()) {
    usage(argv[0]);
    return 2;
  }
  if (!opt.platform &&
      (opt.platform_masters != 1 || opt.platform_irq)) {
    std::fprintf(stderr,
                 "error: --platform-masters / --platform-irq require "
                 "--platform\n");
    return 2;
  }
  if (opt.platform) {
    if (opt.print_files || opt.list_only || opt.lint_only ||
        opt.gen_stats) {
      std::fprintf(stderr,
                   "error: --platform is a simulation-only mode; it cannot "
                   "be combined with --print/--list/--lint/--gen-stats\n");
      return 2;
    }
    if (opt.stats_format == telemetry::Format::Json) {
      std::fprintf(stderr,
                   "error: --platform reports are text-only (one platform, "
                   "not a per-spec array)\n");
      return 2;
    }
    return run_platform(spec_paths, opt);
  }
  if (opt.stats_format == telemetry::Format::Json) {
    if (!opt.gen_stats && !opt.sim_stats && !opt.sim_profile) {
      std::fprintf(stderr,
                   "error: --stats-format json requires --gen-stats, "
                   "--sim-stats or --sim-profile\n");
      return 2;
    }
    if (opt.print_files) {
      std::fprintf(stderr,
                   "error: --stats-format json cannot be combined with "
                   "--print (stdout carries the JSON object)\n");
      return 2;
    }
  }

  // The run's single metrics registry: the engine's phase timings, the
  // cache counters and the CLI's own emit.write_us all land here.
  telemetry::MetricsRegistry metrics;
  opt.engine.metrics = &metrics;

  std::unique_ptr<splice::ArtifactCache> cache;
  if (!no_cache && !cache_dir.empty()) {
    cache = std::make_unique<splice::ArtifactCache>(cache_dir, &metrics);
  }

  // One shared pool: per-spec fan-out (batch) and per-module fan-out
  // (inside the engine) both draw from it, so total concurrency stays at
  // the requested worker count.  jobs-1 threads + the main thread.
  splice::support::JobPool pool(opt.jobs > 1 ? opt.jobs - 1 : 0);
  opt.engine.pool = opt.jobs > 1 ? &pool : nullptr;
  opt.engine.jobs = opt.jobs;
  splice::Engine engine(splice::adapters::AdapterRegistry::instance(),
                        opt.engine);

  // --trace-out: install the process-wide tracer for the batch's lifetime.
  // When a simulation mode runs too, its simulated-time spans are embedded
  // in the same trace file under their own pid.
  std::unique_ptr<telemetry::Tracer> tracer;
  if (!trace_out.empty()) {
    tracer = std::make_unique<telemetry::Tracer>();
    telemetry::Tracer::install(tracer.get());
    opt.embed_sim_trace = opt.sim_requested();
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<SpecResult> results(spec_paths.size());
  {
    // The batch root span: every per-spec span — and, through
    // parallel_for's parent propagation, every engine phase on any worker
    // — nests under it, so the trace renders the run as one flame graph.
    telemetry::Span batch("splice.batch", "cli");
    batch.arg("specs", spec_paths.size());
    batch.arg("jobs", opt.jobs);
    splice::support::parallel_for(
        opt.engine.pool, spec_paths.size(), [&](std::size_t i) {
          compile_one(spec_paths[i], opt, engine, cache.get(), results[i]);
        });
  }
  const auto t1 = std::chrono::steady_clock::now();

  int exit_code = 0;
  if (tracer) {
    // Uninstall before reading: the pool threads are idle (parallel_for
    // joined), so every span is closed and the merge is race-free.
    telemetry::Tracer::install(nullptr);
    std::string sim_events;
    for (const SpecResult& r : results) {
      if (r.sim_trace_events.empty()) continue;
      if (!sim_events.empty()) sim_events += ",\n";
      sim_events += r.sim_trace_events;
    }
    std::ofstream f(trace_out, std::ios::binary);
    f << tracer->chrome_trace_json(sim_events);
    f.flush();
    if (!f) {
      std::fprintf(stderr, "error: cannot write trace to '%s'\n",
                   trace_out.c_str());
      exit_code = 1;
    }
  }

  // --sim-trace-out: one standalone simulated-time trace per spec.  A
  // single spec writes exactly the requested path; a batch appends the
  // device name so the files stay distinct.
  if (!opt.sim_trace_out.empty()) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      const SpecResult& r = results[i];
      if (r.sim_trace.empty()) continue;
      std::string path = opt.sim_trace_out;
      if (results.size() > 1) {
        path += "." + (r.device.empty() ? std::to_string(i) : r.device);
      }
      std::ofstream f(path, std::ios::binary);
      f << r.sim_trace;
      f.flush();
      if (!f) {
        std::fprintf(stderr, "error: cannot write sim trace to '%s'\n",
                     path.c_str());
        exit_code = 1;
      }
    }
  }

  // Aggregate per-spec, in input order: a spec's diagnostics and report
  // always print contiguously, prefixed with the file name when several
  // specs were given.  In json stats mode the per-spec stdout blocks are
  // suppressed — stdout carries exactly one JSON object.
  const bool json_stats = opt.stats_format == telemetry::Format::Json;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SpecResult& r = results[i];
    if (!r.err.empty()) {
      if (spec_paths.size() > 1) {
        std::fprintf(stderr, "== %s ==\n", spec_paths[i].c_str());
      }
      std::fprintf(stderr, "%s", r.err.c_str());
    }
    if (!json_stats && !r.out.empty()) {
      std::fprintf(stdout, "%s", r.out.c_str());
    }
    if (r.exit_code > exit_code) exit_code = r.exit_code;
  }

  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (json_stats) {
    const std::string report = render_json_stats(spec_paths, results, opt,
                                                 elapsed_ms, cache.get(),
                                                 metrics);
    std::fputs(report.c_str(), stdout);
    return exit_code;
  }
  if (opt.gen_stats) {
    const double ms = elapsed_ms;
    std::size_t failed = 0;
    for (const auto& r : results) {
      if (r.exit_code != 0) ++failed;
    }
    std::printf("== generation stats ==\n");
    std::printf("specs:      %zu (%zu ok, %zu failed)\n", results.size(),
                results.size() - failed, failed);
    std::printf("jobs:       %u\n", opt.jobs);
    if (cache) {
      const splice::CacheStats s = cache->stats();
      std::printf("cache:      enabled (%s)\n", cache->dir().c_str());
      std::printf("  hits:     %llu\n",
                  static_cast<unsigned long long>(s.hits));
      std::printf("  misses:   %llu\n",
                  static_cast<unsigned long long>(s.misses));
      std::printf("  stores:   %llu\n",
                  static_cast<unsigned long long>(s.stores));
      std::printf("  corrupt:  %llu\n",
                  static_cast<unsigned long long>(s.corrupt));
    } else {
      std::printf("cache:      disabled\n");
    }
    std::printf("elapsed:    %.2f ms (%.1f specs/s)\n", ms,
                ms > 0.0 ? 1000.0 * static_cast<double>(results.size()) / ms
                         : 0.0);
    if (cache && results.size() > 1) {
      // Each spec's own outcome (not cumulative totals): in a --jobs batch
      // these come from the spec's private generate_cached delta.
      std::printf("per-spec cache (this run):\n");
      for (std::size_t i = 0; i < results.size(); ++i) {
        const splice::CacheStats& s = results[i].cache;
        std::printf("  %-24s hits %llu, misses %llu, stores %llu%s\n",
                    spec_paths[i].c_str(),
                    static_cast<unsigned long long>(s.hits),
                    static_cast<unsigned long long>(s.misses),
                    static_cast<unsigned long long>(s.stores),
                    s.corrupt != 0 ? " (corrupt entries seen)" : "");
      }
    }
    const std::string metrics_text =
        metrics.render(telemetry::Format::Text);
    if (!metrics_text.empty()) {
      std::printf("== pipeline metrics ==\n%s", metrics_text.c_str());
    }
  }
  return exit_code;
}
