// The Splice command-line tool — the user-facing face of the thesis' code
// generator (Figure 1.1): a specification file in, the complete hardware
// and software interface file set out, written under a subdirectory named
// after the device (§3.2.3).
//
// Usage:
//   splice <spec-file> [options]
//     -o <dir>     output directory (default: current directory)
//     --linux      generate Linux mmap-based drivers (thesis §10.2)
//     --print      dump every generated file to stdout instead of disk
//     --list       list generated filenames only
//     --buses      list the registered interface libraries and exit
//     --lint       check-only mode: elaborate and lint the generated
//                  hardware ASTs, print a summary, write nothing
//     --sim-stats [N]  elaborate the device on the virtual platform, run N
//                  idle cycles (default 2000) and print the simulation
//                  kernel's instrumentation counters
//     -h, --help   this text
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "adapters/registry.hpp"
#include "core/splice.hpp"
#include "rtl/simulator.hpp"
#include "runtime/platform.hpp"

namespace {

void usage(const char* argv0) {
  std::printf(
      "Splice: a standardized peripheral logic and interface creation "
      "engine\n"
      "usage: %s <spec-file> [options]\n"
      "  -o <dir>     output directory (default: .)\n"
      "  --linux      generate Linux mmap-based drivers\n"
      "  --print      dump generated files to stdout\n"
      "  --list       list generated filenames only\n"
      "  --buses      list registered interface libraries and exit\n"
      "  --lint       verify the generated hardware (AST lint) and exit\n"
      "               without writing files\n"
      "  --sim-stats [N]  simulate N idle cycles (default 2000) and print\n"
      "               the kernel instrumentation counters\n"
      "  -h, --help   show this help\n",
      argv0);
}

int list_buses() {
  std::printf("Registered interface libraries (thesis §7.2 naming):\n");
  for (const auto& bus : splice::adapters::AdapterRegistry::instance().names()) {
    const auto* adapter =
        splice::adapters::AdapterRegistry::instance().find(bus);
    const auto caps = adapter->capabilities();
    std::string widths;
    for (unsigned w : caps.allowed_widths) {
      if (!widths.empty()) widths += "/";
      widths += std::to_string(w);
    }
    std::printf("  %-28s widths %-9s %s%s%s%s\n",
                splice::adapters::library_filename(bus).c_str(),
                widths.c_str(), caps.memory_mapped ? "mapped " : "opcode ",
                caps.supports_dma ? "dma " : "",
                caps.supports_burst ? "burst " : "",
                caps.strictly_synchronous ? "strictly-sync" : "");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string out_dir = ".";
  bool print_files = false;
  bool list_only = false;
  bool lint_only = false;
  bool sim_stats = false;
  std::uint64_t sim_cycles = 2000;
  splice::EngineOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    }
    if (arg == "--buses") return list_buses();
    if (arg == "--linux") {
      options.driver_os = splice::drivergen::DriverOs::Linux;
    } else if (arg == "--print") {
      print_files = true;
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--lint") {
      lint_only = true;
    } else if (arg == "--sim-stats") {
      sim_stats = true;
      // Optional numeric cycle count; anything else is the next argument.
      if (i + 1 < argc && argv[i + 1][0] >= '0' && argv[i + 1][0] <= '9') {
        const char* text = argv[++i];
        char* end = nullptr;
        errno = 0;
        sim_cycles = std::strtoull(text, &end, 10);
        if (errno == ERANGE) {
          std::fprintf(stderr,
                       "error: --sim-stats cycle count '%s' is out of "
                       "range\n",
                       text);
          return 2;
        }
        if (end == text || *end != '\0') {
          std::fprintf(stderr,
                       "error: --sim-stats expects a cycle count, got "
                       "'%s'\n",
                       text);
          return 2;
        }
      }
    } else if (arg == "-o") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: -o needs a directory\n");
        return 2;
      }
      out_dir = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      std::fprintf(stderr, "error: more than one spec file given\n");
      return 2;
    }
  }
  if (spec_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  std::ifstream in(spec_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read '%s'\n", spec_path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  splice::Engine engine(splice::adapters::AdapterRegistry::instance(),
                        options);
  splice::DiagnosticEngine diags;
  auto artifacts = engine.generate(buffer.str(), diags);
  // Warnings print either way; errors abort.
  if (!diags.all().empty()) {
    std::fprintf(stderr, "%s", diags.render().c_str());
  }
  if (!artifacts) {
    std::fprintf(stderr, "error: interface generation aborted (%zu "
                         "error(s))\n",
                 diags.error_count());
    return 1;
  }

  if (lint_only) {
    // Generation already linted every hardware AST (the engine refuses to
    // proceed on findings), so reaching this point means a clean bill.
    std::printf("lint: device '%s': %zu hardware module(s) clean, nothing "
                "written\n",
                artifacts->spec.target.device_name.c_str(),
                artifacts->spec.functions.size() + 1);
    return 0;
  }
  if (sim_stats) {
    // Elaborate the validated spec onto the virtual platform (default stub
    // behaviours), let the device idle for the requested cycles and report
    // what the kernel actually did.
    try {
      splice::runtime::VirtualPlatform vp(artifacts->spec,
                                          splice::elab::BehaviorMap{});
      vp.sim().step(sim_cycles);
      std::printf("%s", splice::rtl::render_stats(vp.sim()).c_str());
    } catch (const splice::SpliceError& e) {
      std::fprintf(stderr, "error: simulation failed: %s\n", e.what());
      return 1;
    }
    return 0;
  }
  if (list_only) {
    for (const auto& name : artifacts->filenames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (print_files) {
    auto dump = [](const splice::codegen::GeneratedFile& f) {
      std::printf("========== %s ==========\n%s\n", f.filename.c_str(),
                  f.content.c_str());
    };
    for (const auto& f : artifacts->hardware) dump(f);
    for (const auto& f : artifacts->software) dump(f);
    return 0;
  }

  std::string dir;
  try {
    dir = artifacts->write_to(out_dir);
  } catch (const splice::SpliceError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("device '%s': %zu files written to %s\n",
              artifacts->spec.target.device_name.c_str(),
              artifacts->filenames().size(), dir.c_str());
  for (const auto& name : artifacts->filenames()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}
