// splice-fuzz — the property-based conformance fuzzer's command line.
// Generates valid random Splice specifications, runs each through the
// differential oracle (VHDL/Verilog AST equivalence + end-to-end simulated
// driver replay against the SIS protocol checker), shrinks any failure to
// a minimized repro and writes it to the corpus directory.
//
// Usage:
//   splice-fuzz [options]
//     --seed N          campaign seed (default 1); every failure line
//                       prints the (seed, index) pair that reproduces it
//     --count N         specs to generate (default 200)
//     --time-budget MS  stop after MS milliseconds even if --count remains
//     --corpus-dir DIR  write minimized .splice/.vcd/.txt repros here
//     --calls N         driver calls per declaration per spec (default 3)
//     --backend B       simulation backend to replay on: interp, compiled,
//                       or both (default both — lockstep differential run
//                       with cycle-exact trace comparison)
//     --soc             SoC mode: generate whole multi-device topologies
//                       (root PLB + bridged OPB segment, master mux,
//                       interrupt fabric) and run them through the
//                       cross-device SoC oracle
//     --trace-out FILE  Chrome trace-event JSON of the campaign spans
//                       (per-spec and per-driver-call, with the call index
//                       and checker verdict in each call span's args)
//     --sim-trace-out FILE  write the first spec's decoded simulated-time
//                       trace (driver calls, ICOB phases, bus
//                       transactions) as Chrome trace-event JSON
//     --metrics         print the fuzz.* counters after the run
//     -h, --help        this text
//
// Exit status: 0 clean campaign, 1 failures found, 2 usage error.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "support/telemetry.hpp"
#include "testing/fuzz.hpp"

namespace telemetry = splice::support::telemetry;

namespace {

void usage(const char* argv0) {
  std::printf(
      "splice-fuzz: property-based spec fuzzer + SIS conformance harness\n"
      "usage: %s [options]\n"
      "  --seed N          campaign seed (default 1)\n"
      "  --count N         specs to generate (default 200)\n"
      "  --time-budget MS  wall-clock box in milliseconds (default: none)\n"
      "  --corpus-dir DIR  write minimized repros (.splice/.vcd/.txt)\n"
      "  --calls N         driver calls per declaration (default 3)\n"
      "  --backend B       interp, compiled, or both (default both:\n"
      "                    lockstep differential replay of the backends)\n"
      "  --soc             fuzz whole multi-device SoC topologies\n"
      "  --trace-out FILE  write a Chrome trace-event JSON span trace\n"
      "  --sim-trace-out FILE  write the first spec's decoded\n"
      "                    simulated-time trace (Chrome trace-event JSON)\n"
      "  --metrics         print fuzz.* counters after the run\n"
      "  -h, --help        this text\n",
      argv0);
}

bool parse_count(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  splice::testing::FuzzOptions opt;
  std::string trace_out;
  bool print_metrics = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      return 0;
    } else if (arg == "--seed") {
      if (!parse_count(need_value("--seed"), &opt.seed)) {
        std::fprintf(stderr, "error: --seed expects a number\n");
        return 2;
      }
    } else if (arg == "--count") {
      if (!parse_count(need_value("--count"), &opt.count)) {
        std::fprintf(stderr, "error: --count expects a number\n");
        return 2;
      }
    } else if (arg == "--time-budget") {
      if (!parse_count(need_value("--time-budget"), &opt.time_budget_ms)) {
        std::fprintf(stderr, "error: --time-budget expects milliseconds\n");
        return 2;
      }
    } else if (arg == "--corpus-dir") {
      opt.corpus_dir = need_value("--corpus-dir");
    } else if (arg == "--calls") {
      std::uint64_t calls = 0;
      if (!parse_count(need_value("--calls"), &calls) || calls == 0) {
        std::fprintf(stderr, "error: --calls expects a positive number\n");
        return 2;
      }
      opt.calls_per_function = static_cast<unsigned>(calls);
    } else if (arg == "--backend") {
      const std::string b = need_value("--backend");
      if (b == "interp") {
        opt.backend = splice::testing::OracleBackend::kInterp;
      } else if (b == "compiled") {
        opt.backend = splice::testing::OracleBackend::kCompiled;
      } else if (b == "both") {
        opt.backend = splice::testing::OracleBackend::kLockstep;
      } else {
        std::fprintf(stderr,
                     "error: --backend expects interp, compiled or both\n");
        return 2;
      }
    } else if (arg == "--soc") {
      opt.soc = true;
    } else if (arg == "--trace-out") {
      trace_out = need_value("--trace-out");
    } else if (arg == "--sim-trace-out") {
      opt.sim_trace_out = need_value("--sim-trace-out");
    } else if (arg == "--metrics") {
      print_metrics = true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  telemetry::MetricsRegistry metrics;
  opt.metrics = &metrics;
  opt.on_spec = [&](std::uint64_t index,
                    const splice::testing::OracleResult& r) {
    if ((index + 1) % 50 == 0) {
      std::printf("  ... %" PRIu64 " specs checked (last: %" PRIu64
                  " calls)\n",
                  index + 1, r.calls);
      std::fflush(stdout);
    }
  };

  std::unique_ptr<telemetry::Tracer> tracer;
  if (!trace_out.empty()) {
    tracer = std::make_unique<telemetry::Tracer>();
    telemetry::Tracer::install(tracer.get());
  }

  const char* backend_name =
      opt.backend == splice::testing::OracleBackend::kInterp ? "interp"
      : opt.backend == splice::testing::OracleBackend::kCompiled
          ? "compiled"
          : "both (lockstep)";
  std::printf("splice-fuzz: seed %" PRIu64 ", %" PRIu64 " %s, backend %s%s\n",
              opt.seed, opt.count,
              opt.soc ? "SoC configs" : "specs", backend_name,
              opt.time_budget_ms != 0 ? " (time-boxed)" : "");
  const splice::testing::FuzzReport report = splice::testing::run_fuzz(opt);

  if (tracer) {
    telemetry::Tracer::install(nullptr);
    std::ofstream f(trace_out, std::ios::binary);
    f << tracer->chrome_trace_json();
  }

  std::printf("ran %" PRIu64 " specs, %" PRIu64 " driver calls, %" PRIu64
              " bus cycles%s\n",
              report.specs_run, report.calls, report.bus_cycles,
              report.time_boxed_out ? " (stopped by time budget)" : "");
  for (const auto& f : report.failures) {
    std::printf("FAIL spec %" PRIu64 " (seed %" PRIu64 "): %s\n", f.index,
                f.spec_seed, f.summary.c_str());
    if (!f.repro_path.empty()) {
      std::printf("     minimized repro: %s\n", f.repro_path.c_str());
    }
  }
  if (print_metrics) {
    std::fputs(metrics.render(telemetry::Format::Text).c_str(), stdout);
  }
  if (report.failures.empty()) {
    std::printf("clean: zero oracle violations\n");
    return 0;
  }
  return 1;
}
