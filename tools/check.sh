#!/bin/sh
# Full local verification: the tier-1 build + test pass, a telemetry
# smoke stage (a traced two-spec batch whose trace and stats JSON are
# structurally validated), a backend-comparison bench smoke
# (bench/sim_backend --smoke), a generation perf smoke (one cell of
# bench/gen_throughput gated against the checked-in BENCH_gen.json
# phase_us recording), followed by the same test suite under
# ASan+UBSan (the `asan` preset) and under ThreadSanitizer (the `tsan`
# preset — the parallel generation pipeline, the artifact cache and the
# span tracer's per-thread buffers are the interesting targets).  Run
# from the repository root:
#
#   tools/check.sh            # tier-1 + sanitizers
#   tools/check.sh --fast     # tier-1 only
set -eu

cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"
ctest --preset default

echo "== telemetry smoke: traced batch + stats JSON validation =="
# Drive the real binary the way the observability docs advertise it and
# check the trace is structurally sound: valid JSON, every complete event
# carries the required fields, every parent reference resolves, and child
# spans sit inside their same-thread parent's interval.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cat > "$SMOKE_DIR/a.splice" <<'EOF'
%device_name smoke_a
%bus_type plb
%bus_width 32
%base_address 0x80000000
int set(int v);
int get();
EOF
cat > "$SMOKE_DIR/b.splice" <<'EOF'
%device_name smoke_b
%bus_type opb
%bus_width 32
%base_address 0x90000000
int poke(int v);
EOF
build/tools/splice --jobs 2 --trace-out "$SMOKE_DIR/trace.json" \
  --gen-stats --stats-format json --cache-dir "$SMOKE_DIR/cache" \
  -o "$SMOKE_DIR/out" "$SMOKE_DIR/a.splice" "$SMOKE_DIR/b.splice" \
  > "$SMOKE_DIR/stats.json"
python3 - "$SMOKE_DIR/trace.json" "$SMOKE_DIR/stats.json" <<'EOF'
import json, sys

trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
spans = [e for e in events if e.get("ph") == "X"]
assert spans, "trace has no complete events"
for e in spans:
    for field in ("name", "cat", "ts", "dur", "pid", "tid", "args"):
        assert field in e, f"X event missing {field}: {e}"
ids = {e["args"]["span_id"] for e in spans}
by_id = {e["args"]["span_id"]: e for e in spans}
eps = 0.5  # microsecond slack: ts/dur round independently
for e in spans:
    parent = e["args"]["parent"]
    if parent == 0:
        continue
    assert parent in ids, f"unresolved parent {parent} in {e['name']}"
    p = by_id[parent]
    if p["tid"] == e["tid"]:  # same-thread children nest inside the parent
        assert e["ts"] >= p["ts"] - eps, f"{e['name']} starts before parent"
        assert e["ts"] + e["dur"] <= p["ts"] + p["dur"] + eps, \
            f"{e['name']} outlives parent {p['name']}"
roots = [e for e in spans if e["args"]["parent"] == 0]
assert any(e["name"] == "splice.batch" for e in roots), \
    "missing splice.batch root span"

stats = json.load(open(sys.argv[2]))
assert stats["jobs"] == 2
assert len(stats["specs"]) == 2
for spec in stats["specs"]:
    assert spec["exit_code"] == 0, spec
    assert spec["cache"] == {"hits": 0, "misses": 1, "stores": 1,
                             "corrupt": 0}, spec
assert stats["cache"]["misses"] == 2
assert "gen.parse_us" in stats["metrics"]["histograms"]
print(f"telemetry smoke OK: {len(spans)} spans, "
      f"{len(stats['specs'])} specs")
EOF
rm -rf "$SMOKE_DIR"
trap - EXIT

echo "== sim-trace smoke: decoded simulated-time trace + profile =="
# Drive the simulation observability layer end to end: one spec simulated
# with --sim-trace-out (standalone Perfetto trace on the simulated-time
# axis), --sim-profile (hotspot report + sim.prof.* metrics) and a
# combined --trace-out (the wall-clock generation trace with the sim
# events embedded under their own pid).  Validate structure, nesting and
# key gating with python.
SIM_DIR="$(mktemp -d)"
trap 'rm -rf "$SIM_DIR"' EXIT
cat > "$SIM_DIR/dev.splice" <<'EOF'
%device_name sim_smoke
%bus_type plb
%bus_width 32
%base_address 0x80000000
int set(int v);
int get();
EOF
build/tools/splice --sim-trace-out "$SIM_DIR/sim_trace.json" \
  --sim-profile --sim-stats --stats-format json \
  --trace-out "$SIM_DIR/combined.json" \
  -o "$SIM_DIR/out" "$SIM_DIR/dev.splice" > "$SIM_DIR/stats.json"
python3 - "$SIM_DIR/sim_trace.json" "$SIM_DIR/stats.json" \
  "$SIM_DIR/combined.json" <<'EOF'
import json, sys

trace = json.load(open(sys.argv[1]))
spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
by_cat = {}
for e in spans:
    by_cat.setdefault(e["cat"], []).append(e)
for cat in ("sim.call", "sim.phase", "sim.op", "sim.bus"):
    assert by_cat.get(cat), f"sim trace has no {cat} spans"
# The simulated-time axis nests: every phase sits inside a call, every op
# inside a phase (exact containment — cycle timestamps don't round).
def inside(e, parents):
    return any(p["ts"] <= e["ts"] and
               e["ts"] + e["dur"] <= p["ts"] + p["dur"] for p in parents)
for e in by_cat["sim.phase"]:
    assert inside(e, by_cat["sim.call"]), f"phase outside any call: {e}"
for e in by_cat["sim.op"]:
    assert inside(e, by_cat["sim.phase"]), f"op outside any phase: {e}"
icob = {e["name"] for e in by_cat["sim.phase"]}
assert icob <= {"input", "calc", "output"}, icob

stats = json.load(open(sys.argv[2]))
spec = stats["specs"][0]
assert spec["exit_code"] == 0, spec
counters = spec["sim"]["metrics"]["counters"]
prof_keys = [k for k in counters if k.startswith("sim.prof.")]
assert prof_keys, "no sim.prof.* counters despite --sim-profile"
profile = spec["profile"]
assert profile["profiling"] is True
assert profile["modules"], "profile reports no modules"

combined = json.load(open(sys.argv[3]))
cevents = combined["traceEvents"]
sim_pids = {e["pid"] for e in cevents
            if str(e.get("cat", "")).startswith("sim.")}
gen_pids = {e["pid"] for e in cevents
            if e.get("ph") == "X" and e.get("cat") == "gen"}
assert sim_pids, "combined trace carries no embedded sim.* events"
assert gen_pids and sim_pids.isdisjoint(gen_pids), \
    "sim events must live under their own pid next to the wall-clock trace"
print(f"sim-trace smoke OK: {len(spans)} sim spans, "
      f"{len(prof_keys)} sim.prof keys, "
      f"{sum(len(v) for v in by_cat.values())} events")
EOF
rm -rf "$SIM_DIR"
trap - EXIT

echo "== soc smoke: bridged multi-device platform, lockstep backends =="
# Assemble a 3-device 2-segment SoC (two plb devices on the root bus, one
# opb device behind the bridge) with contending masters and the interrupt
# fabric, run it on BOTH simulation backends, and byte-compare the decoded
# per-device bus streams + per-master call timelines.  Any divergence —
# ordering, payloads, cycle stamps, IRQ edges — fails the stage.  A
# --sim-profile pass sanity-checks the profiler on the multi-device sim.
SOC_DIR="$(mktemp -d)"
trap 'rm -rf "$SOC_DIR"' EXIT
cat > "$SOC_DIR/alpha.splice" <<'EOF'
%device_name soc_alpha
%bus_type plb
%bus_width 32
%base_address 0x80000000
int dbl(int x);
nowait slow(int x);
EOF
cat > "$SOC_DIR/beta.splice" <<'EOF'
%device_name soc_beta
%bus_type plb
%bus_width 32
%base_address 0x80001000
int tpl(int x):2;
EOF
cat > "$SOC_DIR/gamma.splice" <<'EOF'
%device_name soc_gamma
%bus_type opb
%bus_width 32
%base_address 0x80002000
int qdr(int x);
nowait far(int x);
EOF
build/tools/splice "$SOC_DIR/alpha.splice" "$SOC_DIR/beta.splice" \
  "$SOC_DIR/gamma.splice" --platform --platform-masters 2 --platform-irq \
  --sim-backend interp --sim-trace-out "$SOC_DIR/streams_interp.txt"
build/tools/splice "$SOC_DIR/alpha.splice" "$SOC_DIR/beta.splice" \
  "$SOC_DIR/gamma.splice" --platform --platform-masters 2 --platform-irq \
  --sim-backend compiled --sim-trace-out "$SOC_DIR/streams_compiled.txt" \
  > /dev/null
cmp "$SOC_DIR/streams_interp.txt" "$SOC_DIR/streams_compiled.txt" || {
  echo "soc smoke FAILED: decoded streams differ between backends" >&2
  exit 1
}
grep -q "= device 2 (soc_gamma) seg1 =" "$SOC_DIR/streams_interp.txt" || {
  echo "soc smoke FAILED: bridged device missing from decoded stream" >&2
  exit 1
}
build/tools/splice "$SOC_DIR/alpha.splice" "$SOC_DIR/gamma.splice" \
  --platform --sim-profile | grep -q "simulation profile" || {
  echo "soc smoke FAILED: --sim-profile produced no profile report" >&2
  exit 1
}
echo "soc smoke OK: decoded streams byte-identical across backends"
rm -rf "$SOC_DIR"
trap - EXIT

echo "== bench smoke: interp vs compiled backend comparison =="
# One abbreviated pass of the backend-comparison harness: catches
# compiled-backend crashes or gross regressions on every workload shape
# (idle stepping, driver calls, fig9 scenarios, corpus replay) without
# the full best-of-5 recording cost.  Does not rewrite BENCH_sim.json.
build/bench/sim_backend --smoke
# The SoC scenario matrix (masters/bridge/completion-mode rows) — same
# abbreviated pass, same no-rewrite rule.
build/bench/soc_contention --smoke

echo "== perf smoke: phase_us regression gate vs BENCH_gen.json =="
# One jobs=1 cache-off cell of the throughput bench (best of 3) over the
# same 12-spec corpus the checked-in recording used, compared phase by
# phase against BENCH_gen.json.  A >1.5x regression of the parse or
# codegen phase fails the check: the threshold is wide enough to absorb
# the noisy single-CPU recording machine but catches an accidental
# return to per-generate engine rebuilds, stringstream emission, or
# quadratic symbol lookups.  Does not rewrite BENCH_gen.json.
PERF_DIR="$(mktemp -d)"
trap 'rm -rf "$PERF_DIR"' EXIT
build/bench/gen_throughput --smoke "$PERF_DIR/gen_smoke.json"
python3 - BENCH_gen.json "$PERF_DIR/gen_smoke.json" <<'EOF'
import json, sys

def cell(path):
    doc = json.load(open(path))
    for s in doc["samples"]:
        if s["jobs"] == 1 and s["cache"] == "off":
            return s
    raise SystemExit(f"{path}: no jobs=1 cache=off sample")

recorded, fresh = cell(sys.argv[1]), cell(sys.argv[2])
failed = False
for phase in ("parse", "codegen"):
    base = recorded["phase_us"][phase]
    now = fresh["phase_us"][phase]
    ratio = now / base if base else float("inf")
    flag = "FAIL" if ratio > 1.5 else "ok"
    print(f"  gen.{phase}_us: recorded {base} fresh {now} "
          f"({ratio:.2f}x) {flag}")
    failed |= ratio > 1.5
if failed:
    raise SystemExit("perf smoke FAILED: phase regression >1.5x vs "
                     "BENCH_gen.json (re-record only if intentional)")
print("perf smoke OK")
EOF
rm -rf "$PERF_DIR"
trap - EXIT

echo "== fuzz: time-boxed random-seed conformance campaign =="
# The fixed-seed 200-spec campaign already ran as part of ctest
# (FuzzCampaign.FixedSeed200SpecsZeroViolations); this stage adds a fresh
# random seed per check.sh run, time-boxed so the stage cost is bounded.
# Failures write minimized .splice/.vcd repros to build/fuzz-corpus —
# commit the repro with the fix.
FUZZ_SEED="$(date +%s)"
FUZZ_DIR="$(mktemp -d)"
trap 'rm -rf "$FUZZ_DIR"' EXIT
if ! build/tools/splice-fuzz --seed "$FUZZ_SEED" --count 4000 \
    --time-budget 60000 --corpus-dir build/fuzz-corpus \
    --trace-out "$FUZZ_DIR/fuzz_trace.json" --metrics; then
  echo "fuzz campaign FAILED (replay: splice-fuzz --seed $FUZZ_SEED);" \
       "minimized repros in build/fuzz-corpus" >&2
  exit 1
fi
# The campaign is span-tracer instrumented: the trace must carry the
# campaign root and one fuzz.spec span per spec checked.
python3 - "$FUZZ_DIR/fuzz_trace.json" <<'EOF'
import json, sys
trace = json.load(open(sys.argv[1]))
names = [e.get("name") for e in trace["traceEvents"] if e.get("ph") == "X"]
assert "fuzz.campaign" in names, "missing fuzz.campaign span"
specs = sum(1 for n in names if n == "fuzz.spec")
assert specs > 0, "trace has no fuzz.spec spans"
print(f"fuzz trace OK: {specs} fuzz.spec spans")
EOF
rm -rf "$FUZZ_DIR"
trap - EXIT

echo "== fuzz: time-boxed random-seed SoC topology campaign =="
# SoC mode: whole multi-device topologies (2-4 devices, bridged segments,
# contending masters, interrupt fabric) generated per seed and replayed in
# interpreter/compiled lockstep under the cross-device checker axioms.
# The fixed-seed 200-config campaign already ran as part of ctest
# (SocFuzzCampaign.FixedSeed200ConfigsZeroViolations); this adds a fresh
# seed per run.  Failures write the full topology repro to
# build/fuzz-corpus.
if ! build/tools/splice-fuzz --soc --seed "$FUZZ_SEED" --count 400 \
    --time-budget 60000 --corpus-dir build/fuzz-corpus --metrics; then
  echo "SoC fuzz campaign FAILED (replay: splice-fuzz --soc --seed" \
       "$FUZZ_SEED); topology repros in build/fuzz-corpus" >&2
  exit 1
fi

if [ "${1:-}" = "--fast" ]; then
  echo "== skipping sanitizer + coverage passes (--fast) =="
  exit 0
fi

# Both sanitizer passes cover the compiled simulation backend twice
# over: ctest includes test_compile_backend (executor arena, static
# scheduler, lockstep platform equivalence), and the fuzz stages run
# `--backend both`, replaying every generated spec on the interpreter
# AND the compiled executor in lockstep — the bit-packed arena and
# threaded dispatch are exactly where UB hides.
echo "== sanitizers: ASan+UBSan build + ctest =="
cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
ctest --preset asan
echo "== sanitizers: ASan+UBSan random-seed fuzz (lockstep backends) =="
build-asan/tools/splice-fuzz --seed "$FUZZ_SEED" --count 400 \
  --backend both --time-budget 60000 --corpus-dir build-asan/fuzz-corpus
build-asan/tools/splice-fuzz --soc --seed "$FUZZ_SEED" --count 60 \
  --time-budget 60000 --corpus-dir build-asan/fuzz-corpus

echo "== sanitizers: TSan build + ctest =="
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"
ctest --preset tsan
echo "== sanitizers: TSan random-seed fuzz (lockstep backends) =="
build-tsan/tools/splice-fuzz --seed "$FUZZ_SEED" --count 400 \
  --backend both --time-budget 60000 --corpus-dir build-tsan/fuzz-corpus
build-tsan/tools/splice-fuzz --soc --seed "$FUZZ_SEED" --count 60 \
  --time-budget 60000 --corpus-dir build-tsan/fuzz-corpus

echo "== coverage: instrumented ctest + gcov line summary =="
cmake --preset coverage
cmake --build --preset coverage -j "$(nproc)"
ctest --preset coverage
# No gcovr/lcov in the container: aggregate the raw gcov JSON ourselves.
python3 - build-coverage <<'EOF'
import collections, json, os, subprocess, sys

build_dir = sys.argv[1]
gcda = []
for root, _, files in os.walk(build_dir):
    gcda += [os.path.join(root, f) for f in files if f.endswith(".gcda")]
assert gcda, "no .gcda files — did ctest run in the coverage build?"

# line -> hit, keyed by source path, merged across all object files.
lines = collections.defaultdict(dict)
for path in gcda:
    out = subprocess.run(
        ["gcov", "--json-format", "--stdout", os.path.basename(path)],
        cwd=os.path.dirname(path), capture_output=True, check=False)
    for doc in out.stdout.decode().splitlines():
        if not doc.startswith("{"):
            continue
        for f in json.loads(doc).get("files", []):
            src = f["file"]
            if "/src/" not in src and not src.startswith("src/"):
                continue
            tracked = lines[src.split("/src/")[-1].removeprefix("src/")]
            for ln in f["lines"]:
                n = ln["line_number"]
                tracked[n] = tracked.get(n, 0) + ln["count"]

per_dir = collections.defaultdict(lambda: [0, 0])
total = [0, 0]
for src, tracked in sorted(lines.items()):
    top = src.split("/")[0]
    for _, count in tracked.items():
        per_dir[top][1] += 1
        total[1] += 1
        if count > 0:
            per_dir[top][0] += 1
            total[0] += 1
print("line coverage by subsystem (src/):")
for top, (hit, all_) in sorted(per_dir.items()):
    print(f"  {top:12s} {hit:6d}/{all_:<6d} {100.0 * hit / all_:5.1f}%")
assert total[1] > 0
print(f"  {'TOTAL':12s} {total[0]:6d}/{total[1]:<6d} "
      f"{100.0 * total[0] / total[1]:5.1f}%")
EOF

echo "== all checks passed =="
