#!/bin/sh
# Full local verification: the tier-1 build + test pass, followed by the
# same test suite under ASan+UBSan (the `asan` preset) and under
# ThreadSanitizer (the `tsan` preset — the parallel generation pipeline
# and the artifact cache are the interesting targets).  Run from the
# repository root:
#
#   tools/check.sh            # tier-1 + sanitizers
#   tools/check.sh --fast     # tier-1 only
set -eu

cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"
ctest --preset default

if [ "${1:-}" = "--fast" ]; then
  echo "== skipping sanitizer pass (--fast) =="
  exit 0
fi

echo "== sanitizers: ASan+UBSan build + ctest =="
cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
ctest --preset asan

echo "== sanitizers: TSan build + ctest =="
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"
ctest --preset tsan

echo "== all checks passed =="
