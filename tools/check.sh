#!/bin/sh
# Full local verification: the tier-1 build + test pass, a telemetry
# smoke stage (a traced two-spec batch whose trace and stats JSON are
# structurally validated), followed by the same test suite under
# ASan+UBSan (the `asan` preset) and under ThreadSanitizer (the `tsan`
# preset — the parallel generation pipeline, the artifact cache and the
# span tracer's per-thread buffers are the interesting targets).  Run
# from the repository root:
#
#   tools/check.sh            # tier-1 + sanitizers
#   tools/check.sh --fast     # tier-1 only
set -eu

cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"
ctest --preset default

echo "== telemetry smoke: traced batch + stats JSON validation =="
# Drive the real binary the way the observability docs advertise it and
# check the trace is structurally sound: valid JSON, every complete event
# carries the required fields, every parent reference resolves, and child
# spans sit inside their same-thread parent's interval.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cat > "$SMOKE_DIR/a.splice" <<'EOF'
%device_name smoke_a
%bus_type plb
%bus_width 32
%base_address 0x80000000
int set(int v);
int get();
EOF
cat > "$SMOKE_DIR/b.splice" <<'EOF'
%device_name smoke_b
%bus_type opb
%bus_width 32
%base_address 0x90000000
int poke(int v);
EOF
build/tools/splice --jobs 2 --trace-out "$SMOKE_DIR/trace.json" \
  --gen-stats --stats-format json --cache-dir "$SMOKE_DIR/cache" \
  -o "$SMOKE_DIR/out" "$SMOKE_DIR/a.splice" "$SMOKE_DIR/b.splice" \
  > "$SMOKE_DIR/stats.json"
python3 - "$SMOKE_DIR/trace.json" "$SMOKE_DIR/stats.json" <<'EOF'
import json, sys

trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
spans = [e for e in events if e.get("ph") == "X"]
assert spans, "trace has no complete events"
for e in spans:
    for field in ("name", "cat", "ts", "dur", "pid", "tid", "args"):
        assert field in e, f"X event missing {field}: {e}"
ids = {e["args"]["span_id"] for e in spans}
by_id = {e["args"]["span_id"]: e for e in spans}
eps = 0.5  # microsecond slack: ts/dur round independently
for e in spans:
    parent = e["args"]["parent"]
    if parent == 0:
        continue
    assert parent in ids, f"unresolved parent {parent} in {e['name']}"
    p = by_id[parent]
    if p["tid"] == e["tid"]:  # same-thread children nest inside the parent
        assert e["ts"] >= p["ts"] - eps, f"{e['name']} starts before parent"
        assert e["ts"] + e["dur"] <= p["ts"] + p["dur"] + eps, \
            f"{e['name']} outlives parent {p['name']}"
roots = [e for e in spans if e["args"]["parent"] == 0]
assert any(e["name"] == "splice.batch" for e in roots), \
    "missing splice.batch root span"

stats = json.load(open(sys.argv[2]))
assert stats["jobs"] == 2
assert len(stats["specs"]) == 2
for spec in stats["specs"]:
    assert spec["exit_code"] == 0, spec
    assert spec["cache"] == {"hits": 0, "misses": 1, "stores": 1,
                             "corrupt": 0}, spec
assert stats["cache"]["misses"] == 2
assert "gen.parse_us" in stats["metrics"]["histograms"]
print(f"telemetry smoke OK: {len(spans)} spans, "
      f"{len(stats['specs'])} specs")
EOF
rm -rf "$SMOKE_DIR"
trap - EXIT

if [ "${1:-}" = "--fast" ]; then
  echo "== skipping sanitizer pass (--fast) =="
  exit 0
fi

echo "== sanitizers: ASan+UBSan build + ctest =="
cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
ctest --preset asan

echo "== sanitizers: TSan build + ctest =="
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"
ctest --preset tsan

echo "== all checks passed =="
