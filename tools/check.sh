#!/bin/sh
# Full local verification: the tier-1 build + test pass, followed by the
# same test suite under ASan+UBSan (the `asan` CMake preset).  Run from
# the repository root:
#
#   tools/check.sh            # tier-1 + sanitizers
#   tools/check.sh --fast     # tier-1 only
set -eu

cd "$(dirname "$0")/.."

echo "== tier-1: configure + build + ctest =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"
ctest --preset default

if [ "${1:-}" = "--fast" ]; then
  echo "== skipping sanitizer pass (--fast) =="
  exit 0
fi

echo "== sanitizers: ASan+UBSan build + ctest =="
cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
ctest --preset asan

echo "== all checks passed =="
