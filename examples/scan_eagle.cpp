// The chapter-9 real-world use case: the Scan Eagle UAV linear
// interpolator behind all five interface implementations, run over the
// four Figure 9.1 scenarios on the cycle-accurate simulated SoC.
//
// Build & run:  ./build/examples/example_scan_eagle
#include <cstdio>

#include "devices/evaluation.hpp"
#include "runtime/platform.hpp"
#include "support/text_table.hpp"

int main() {
  using namespace splice;
  using namespace splice::devices;

  std::printf("Scan Eagle UAV linear interpolator (thesis ch. 9)\n");
  std::printf("PPC-405 @300 MHz, interconnects @100 MHz (3:1 ratio)\n\n");

  TextTable table;
  table.set_header({"Implementation", "Scenario 1", "Scenario 2",
                    "Scenario 3", "Scenario 4", "all correct"});
  table.set_alignment({TextTable::Align::Left, TextTable::Align::Right,
                       TextTable::Align::Right, TextTable::Align::Right,
                       TextTable::Align::Right, TextTable::Align::Right});

  bool all_ok = true;
  for (Impl impl : kAllImpls) {
    std::vector<std::string> row{std::string(impl_name(impl))};
    bool correct = true;
    for (const auto& sc : scenarios()) {
      const ScenarioRun run = run_scenario(impl, sc);
      row.push_back(std::to_string(run.bus_cycles));
      correct = correct && run.correct();
    }
    row.push_back(correct ? "yes" : "NO");
    all_ok = all_ok && correct;
    table.add_row(std::move(row));
  }
  std::printf("Clock cycles per interpolation run (Figure 9.2):\n%s\n",
              table.render().c_str());

  // A flight-software flavoured run: stream a sequence of control updates
  // through the Splice FCB variant and integrate the outputs.
  std::printf("Flight-control stream over the Splice FCB interface:\n");
  ir::DeviceSpec spec = make_interpolator_spec("fcb", true, false);
  runtime::VirtualPlatform platform(std::move(spec),
                                    make_interpolator_behaviors());
  std::uint64_t integrated = 0;
  std::uint64_t total_cycles = 0;
  for (unsigned step = 1; step <= 8; ++step) {
    const ScenarioInputs in = make_inputs(scenarios()[step % 4], step);
    auto r = platform.call(
        "interp",
        {{in.set1.size()}, in.set1, {in.set2.size()}, in.set2,
         {in.set3.size()}, in.set3});
    integrated += r.outputs.at(0);
    total_cycles += r.bus_cycles;
    if (r.outputs.at(0) != in.expected()) {
      std::printf("  step %u: DATA MISMATCH\n", step);
      all_ok = false;
    }
  }
  std::printf("  8 control updates, %llu bus cycles total, checksum "
              "0x%llx\n",
              static_cast<unsigned long long>(total_cycles),
              static_cast<unsigned long long>(integrated & 0xFFFFFFFF));
  std::printf("  SIS protocol violations: %zu\n\n",
              platform.checker().violations().size());
  std::printf("%s\n", all_ok ? "All implementations returned identical, "
                               "correct results."
                             : "FAILURE: data mismatch detected.");
  return all_ok ? 0 : 1;
}
