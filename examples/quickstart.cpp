// Quickstart: the whole Splice flow on one page.
//
//   1. Describe a device as ANSI-C-style interface declarations plus
//      %-directives (thesis ch. 3).
//   2. Generate the hardware interface files and software drivers (ch. 5/6).
//   3. Bind calculation behaviour to the generated stubs and run real
//      driver calls against the cycle-accurate simulated SoC.
//
// Build & run:  ./build/examples/example_quickstart
#include <cstdio>

#include "core/splice.hpp"
#include "runtime/platform.hpp"

int main() {
  using namespace splice;

  // -- 1. The specification ---------------------------------------------------
  const char* spec_text = R"(
    // A tiny vector accelerator: multiply-accumulate over n values.
    %device_name quickstart_mac
    %bus_type plb
    %bus_width 32
    %base_address 0x80002000

    int mac(char n, int*:n xs, int scale);
    nowait reset_accumulator();
  )";

  // -- 2. Generation ----------------------------------------------------------
  Engine engine;
  DiagnosticEngine diags;
  auto artifacts = engine.generate(spec_text, diags);
  if (!artifacts) {
    std::fprintf(stderr, "generation failed:\n%s", diags.render().c_str());
    return 1;
  }
  std::printf("Generated files for device '%s':\n",
              artifacts->spec.target.device_name.c_str());
  for (const auto& name : artifacts->filenames()) {
    std::printf("  %s\n", name.c_str());
  }
  const auto* stub = artifacts->find("func_mac.vhd");
  std::printf("\n--- first lines of func_mac.vhd ---\n%.*s...\n",
              400, stub->content.c_str());

  // -- 3. Fill in the calculation and run on the simulated SoC -----------------
  elab::BehaviorMap behaviors;
  behaviors.set("mac", [](const elab::CallContext& ctx) {
    std::uint64_t acc = 0;
    for (std::uint64_t v : ctx.array(1)) acc += v * ctx.scalar(2);
    return elab::CalcResult{/*calc_cycles=*/8, {acc}};
  });

  runtime::VirtualPlatform platform(artifacts->spec, behaviors);
  auto result = platform.call("mac", {{4}, {1, 2, 3, 4}, {10}});
  std::printf("\nmac(4, {1,2,3,4}, 10) = %llu  (%llu bus cycles, %llu CPU "
              "cycles)\n",
              static_cast<unsigned long long>(result.outputs.at(0)),
              static_cast<unsigned long long>(result.bus_cycles),
              static_cast<unsigned long long>(result.cpu_cycles));
  std::printf("SIS protocol violations observed: %zu\n",
              platform.checker().violations().size());
  return result.outputs.at(0) == 100 ? 0 : 1;
}
