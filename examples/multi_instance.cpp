// Multi-instance hardware functions (thesis §3.1.6): a multi-threaded
// flight-control application where each software thread drives its own
// hardware copy of a sensor-fusion function.  The example dispatches one
// job per instance, lets all four calculations run concurrently behind a
// single bus attachment, and writes a VCD waveform of the run for
// inspection in any standard viewer.
//
// Build & run:  ./build/examples/example_multi_instance
#include <cstdio>

#include "drivergen/program.hpp"
#include "frontend/parser.hpp"
#include "ir/validate.hpp"
#include "rtl/trace.hpp"
#include "rtl/vcd.hpp"
#include "runtime/cpu.hpp"
#include "runtime/platform.hpp"

int main() {
  using namespace splice;
  using drivergen::DriverOp;
  using drivergen::OpCode;

  DiagnosticEngine diags;
  auto spec = frontend::parse_spec(R"(
    %device_name sensor_fusion
    %bus_type plb
    %bus_width 32
    %base_address 0x80006000
    // One hardware copy per flight-control thread (§3.1.6).
    int fuse(int gyro, int accel):4;
  )", diags);
  if (!spec || !ir::validate(*spec, diags)) {
    std::fprintf(stderr, "%s", diags.render().c_str());
    return 1;
  }

  elab::BehaviorMap behaviors;
  behaviors.set("fuse", [](const elab::CallContext& ctx) {
    // A deliberately long calculation so the concurrency is visible.
    const std::uint64_t fused =
        (ctx.scalar(0) * 7 + ctx.scalar(1) * 3) / 10 + ctx.instance_index;
    return elab::CalcResult{50, {fused}};
  });
  runtime::VirtualPlatform vp(std::move(*spec), behaviors);

  rtl::Trace trace(vp.sim());
  trace.watch("SIS_FUNC_ID");
  trace.watch("SIS_IO_ENABLE");
  trace.watch("SIS_CALC_DONE");

  // "Each thread" dispatches to its own instance; the results are
  // collected afterwards (the §6.1.2 inst_index convention).
  const std::uint32_t base_fid = vp.spec().functions[0].func_id;
  drivergen::DriverProgram program;
  program.function_name = "fuse";
  const std::uint64_t gyro[4] = {100, 200, 300, 400};
  const std::uint64_t accel[4] = {40, 30, 20, 10};
  for (unsigned t = 0; t < 4; ++t) {
    const std::uint32_t fid = base_fid + t;
    program.ops.push_back(DriverOp{OpCode::SetAddress, fid, {}, 0});
    program.ops.push_back(DriverOp{OpCode::WriteSingle, fid, {gyro[t]}, 0});
    program.ops.push_back(DriverOp{OpCode::WriteSingle, fid, {accel[t]}, 0});
  }
  for (unsigned t = 0; t < 4; ++t) {
    program.ops.push_back(
        DriverOp{OpCode::ReadSingle, base_fid + t, {}, 1});
    program.total_read_words += 1;
  }
  vp.cpu().run(std::move(program));
  const std::uint64_t start = vp.sim().cycle();
  vp.sim().step_until([&] { return vp.cpu().done(); }, 100'000);
  const std::uint64_t cycles = vp.sim().cycle() - start;

  std::printf("4 threads, 4 hardware copies, 50-cycle calculation each:\n");
  for (unsigned t = 0; t < 4; ++t) {
    const std::uint64_t expect = (gyro[t] * 7 + accel[t] * 3) / 10 + t;
    const std::uint64_t got = vp.cpu().read_words().at(t);
    std::printf("  thread %u: fuse(%llu, %llu) = %llu %s\n", t,
                static_cast<unsigned long long>(gyro[t]),
                static_cast<unsigned long long>(accel[t]),
                static_cast<unsigned long long>(got),
                got == expect ? "(ok)" : "(WRONG)");
  }
  std::printf("total: %llu bus cycles — well under 4 x (I/O + 50) thanks "
              "to overlapped calculations\n",
              static_cast<unsigned long long>(cycles));
  std::printf("SIS protocol violations: %zu\n",
              vp.checker().violations().size());

  if (rtl::write_vcd_file(trace, vp.sim(), "sensor_fusion.vcd")) {
    std::printf("waveform written to sensor_fusion.vcd (%zu cycles)\n",
                trace.cycles_recorded());
  }
  return vp.checker().clean() ? 0 : 1;
}
