// The thesis' chapter-8 worked example, end to end: the Figure 8.2
// specification is generated into the Figure 8.3 / 8.7 file sets, the
// timer core is "filled in" (§8.3), and the Figure 8.8 software test
// suite runs against the simulated device through its generated drivers.
//
// Build & run:  ./build/examples/example_hw_timer
#include <cstdio>

#include "core/splice.hpp"
#include "devices/timer.hpp"
#include "runtime/platform.hpp"

int main() {
  using namespace splice;
  using namespace splice::devices;

  // Generate from the Figure 8.2 specification (verbatim, brace form).
  Engine engine;
  DiagnosticEngine diags;
  auto artifacts = engine.generate(timer_spec_text(), diags);
  if (!artifacts) {
    std::fprintf(stderr, "%s", diags.render().c_str());
    return 1;
  }
  std::printf("Figure 8.3/8.7 file set:\n");
  for (const auto& f : artifacts->hardware) {
    std::printf("  %-26s %s\n", f.filename.c_str(), f.purpose.c_str());
  }
  for (const auto& f : artifacts->software) {
    std::printf("  %-26s %s\n", f.filename.c_str(), f.purpose.c_str());
  }

  // "Filling in the user-logic stubs" (§8.3.1): bind the timer core.
  TimerCore core;
  runtime::VirtualPlatform platform(artifacts->spec,
                                    make_timer_behaviors(core));
  platform.sim().add<TimerTick>(core);

  auto call = [&](const char* fn, drivergen::CallArgs args =
                                      {}) -> std::uint64_t {
    auto r = platform.call(fn, args);
    return r.outputs.empty() ? 0 : r.outputs[0];
  };

  // --- the Figure 8.8 test suite ---------------------------------------------
  std::printf("\nRunning the Figure 8.8 test suite on the simulated SoC:\n");
  call("disable");
  const std::uint64_t clock_rate = call("get_clock");
  std::printf("  Clock: %llu Hz\n",
              static_cast<unsigned long long>(clock_rate));

  // Figure 8.8 uses a 5-second threshold; in simulation we scale the
  // interval down so the run completes instantly.
  const std::uint64_t threshold = 400;
  call("set_threshold", {{threshold}});
  call("enable");

  std::printf("  Value: %llu (snapshot right after enable; should be near "
              "0)\n",
              static_cast<unsigned long long>(call("get_snapshot")));

  platform.sim().step(threshold + 64);  // "sleep(6)": the timer fires

  const std::uint64_t status = call("get_status");
  std::printf("  Status: 0x%llx (bit 0 = enabled, bit 1 = fired)\n",
              static_cast<unsigned long long>(status));

  call("disable");
  std::printf("  Thold: %llu (read back, should equal %llu)\n",
              static_cast<unsigned long long>(call("get_threshold")),
              static_cast<unsigned long long>(threshold));
  std::printf("  Status: 0x%llx (disabled; fired bit cleared by the "
              "previous read)\n",
              static_cast<unsigned long long>(call("get_status")));

  const bool ok = (status & 3u) == 3u && platform.checker().clean();
  std::printf("\n%s\n", ok ? "Timer test suite PASSED"
                           : "Timer test suite FAILED");
  return ok ? 0 : 1;
}
